//! Triage benchmark: how much expert effort does agreement-prediction
//! triage save, and what does it cost in precision?
//!
//! Two arms of the same [`ValidationSession`] replay identical streams and
//! run the validation loop to exhaustion (every object finalized — by an
//! expert query or, in the triaged arm, by an auto-finalize):
//!
//! * `plain`   — triage disabled: every object costs one expert query, so
//!   the arm ends at precision 1.0 (the oracle never errs) having spent
//!   `num_objects` queries. This is the effort ceiling.
//! * `triaged` — [`TriageConfig::calibrated`]: objects the convergence
//!   predictor scores unanimous (plus the posterior confidence floor and
//!   the vote floor) finalize without a query; the expert budget
//!   concentrates on the contentious pool.
//!
//! Both arms also sweep a budget grid, yielding the budget-to-precision
//! curves, and the report derives **expert-queries-saved at equal
//! precision**: the smallest plain-arm budget whose precision matches the
//! triaged arm's full-run precision, minus the queries the triaged arm
//! actually spent.
//!
//! Crowds: the paper-default streaming crowd (mixed Kazai population,
//! spammers included) and two adversarial scenarios from the PR 7 attack
//! library (colluding clique, sleeper spammers) with the streaming trust
//! defense enabled in both arms — so the delta isolates triage, not the
//! defense.
//!
//! Usage: `bench_triage [--quick] [--check] [--out <path>]`
//!
//! `--check` enforces the `triage-smoke` CI gate on the paper-default
//! crowd: triaged precision ≥ plain − 0.5pt AND triaged queries ≤ 70% of
//! plain.

use crowdval_core::{HybridStrategy, ProcessConfig, TriageConfig, ValidationSessionBuilder};
use crowdval_model::{GroundTruth, Vote};
use crowdval_sim::{
    AdversarialConfig, AttackKind, PopulationMix, StreamingConfig, SyntheticConfig,
};
use crowdval_spammer::TrustConfig;
use serde::Serialize;

/// Seed base for the crowd fixtures.
const SEED_BASE: u64 = 74_000;

/// The CI gate: triaged precision may trail plain by at most half a point.
const PRECISION_GATE: f64 = 0.005;
/// The CI gate: triaged queries must not exceed this share of plain's.
const QUERY_GATE: f64 = 0.70;

/// One replayable crowd: a vote stream with its ground truth.
struct Crowd {
    name: &'static str,
    truth: GroundTruth,
    num_labels: usize,
    num_objects: usize,
    initial: Vec<Vote>,
    batches: Vec<Vec<Vote>>,
    /// Whether the streaming trust defense runs (both arms alike).
    defended: bool,
}

impl Crowd {
    fn total_votes(&self) -> usize {
        self.initial.len() + self.batches.iter().map(Vec::len).sum::<usize>()
    }
}

/// The paper-default crowd as a stream: the mixed Kazai population —
/// reliable, normal and sloppy workers plus uniform and random spammers.
fn paper_default_crowd(_quick: bool) -> Crowd {
    // The gate crowd is never shrunk in quick mode: the calibrated
    // thresholds are statements about the canonical 72-object fixture, and
    // a smaller crowd is a different statistical regime (thinner
    // post-exclusion vote pools, more EM re-anchor crashes), not a faster
    // version of the same one. Quick mode saves time on the budget grid
    // and the adversarial crowds instead.
    let num_objects = 72;
    let scenario = StreamingConfig {
        base: SyntheticConfig {
            num_objects,
            ..SyntheticConfig::paper_default(SEED_BASE)
        },
        ..StreamingConfig::paper_default(SEED_BASE)
    }
    .generate();
    Crowd {
        name: "paper_default",
        truth: scenario.truth,
        num_labels: scenario.num_labels,
        num_objects,
        initial: scenario.initial,
        batches: scenario.batches,
        defended: true,
    }
}

/// An adversarial crowd from the PR 7 attack library: an all-reliable
/// honest core plus coordinated attackers, same shape as `bench_spam`.
fn adversarial_crowd(attack: AttackKind, quick: bool) -> Crowd {
    let (num_objects, batch_size) = if quick { (40, 30) } else { (60, 45) };
    let scenario = AdversarialConfig {
        base: StreamingConfig {
            base: SyntheticConfig {
                num_objects,
                num_workers: 10,
                num_labels: 3,
                reliability: 0.85,
                mix: PopulationMix::all_reliable(),
                ..SyntheticConfig::paper_default(SEED_BASE + attack as u64)
            },
            initial_fraction: 0.1,
            batch_size,
            late_object_fraction: 0.3,
            late_worker_fraction: 0.25,
        },
        attack,
        num_attackers: 6,
        sleeper_honest_votes: if quick { 8 } else { 12 },
    }
    .generate();
    Crowd {
        name: match attack {
            AttackKind::Clique => "adversarial_clique",
            AttackKind::Sleeper => "adversarial_sleeper",
            AttackKind::Drift => "adversarial_drift",
            AttackKind::LabelCopier => "adversarial_label_copier",
        },
        truth: scenario.truth,
        num_labels: scenario.num_labels,
        num_objects,
        initial: scenario.initial,
        batches: scenario.batches,
        defended: true,
    }
}

/// One point of the budget-to-precision curve.
#[derive(Debug, Serialize)]
struct CurvePoint {
    budget: usize,
    queries: usize,
    auto_finalized: u64,
    precision: f64,
}

/// One arm run to exhaustion, plus its budget curve.
#[derive(Debug, Serialize)]
struct ArmReport {
    /// Expert queries the unbounded run spent.
    queries: usize,
    /// Objects finalized without a query (0 in the plain arm).
    auto_finalized: u64,
    /// Scoring events the triage policy performed.
    scored: u64,
    /// Final precision of the unbounded run.
    precision: f64,
    /// Budget-to-precision curve (budget in expert queries).
    curve: Vec<CurvePoint>,
}

#[derive(Debug, Serialize)]
struct CrowdReport {
    crowd: &'static str,
    num_objects: usize,
    total_votes: usize,
    defended: bool,
    plain: ArmReport,
    triaged: ArmReport,
    /// `1 − triaged.queries / plain.queries`.
    query_reduction: f64,
    /// `plain.precision − triaged.precision`.
    precision_loss: f64,
    /// Plain-arm queries needed to reach the triaged arm's full-run
    /// precision (from the curve), minus the queries the triaged arm spent.
    queries_saved_at_equal_precision: i64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    scenario: String,
    precision_gate: f64,
    query_gate: f64,
    crowds: Vec<CrowdReport>,
}

/// Streams the crowd through one session arm and validates with a perfect
/// oracle until the budget is exhausted or every object is finalized.
/// Returns the curve point plus the number of triage scoring events.
fn run_arm(crowd: &Crowd, triage: bool, budget: Option<usize>) -> (CurvePoint, u64) {
    let config = ProcessConfig {
        budget,
        trust: if crowd.defended {
            TrustConfig::streaming_default()
        } else {
            TrustConfig::default()
        },
        triage: if triage {
            TriageConfig::calibrated()
        } else {
            TriageConfig::default()
        },
        ..ProcessConfig::default()
    };
    let mut session = ValidationSessionBuilder::empty(crowd.num_labels)
        .strategy(Box::new(HybridStrategy::new(7)))
        .config(config)
        .ground_truth(crowd.truth.clone())
        .try_build()
        .expect("bench crowd is well-formed");
    session.ingest(&crowd.initial).expect("initial ingest");
    for batch in &crowd.batches {
        session.ingest(batch).expect("batch ingest");
    }
    let mut queries = 0usize;
    while !session.is_finished() {
        let Some(object) = session.select_next() else {
            break;
        };
        session
            .integrate(object, crowd.truth.label(object))
            .expect("oracle label is in range");
        queries += 1;
    }
    let counters = session.triage_counters();
    let point = CurvePoint {
        budget: budget.unwrap_or(crowd.num_objects),
        queries,
        auto_finalized: counters.auto_finalized,
        precision: session.precision().expect("ground truth is attached"),
    };
    (point, counters.scored)
}

fn run_crowd(crowd: &Crowd, quick: bool) -> CrowdReport {
    let fractions: &[f64] = if quick {
        &[0.25, 0.5, 0.75, 1.0]
    } else {
        &[0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0]
    };
    let budgets: Vec<usize> = fractions
        .iter()
        .map(|f| ((crowd.num_objects as f64 * f).round() as usize).max(1))
        .collect();

    let arm = |triage: bool| -> ArmReport {
        let (full, scored) = run_arm(crowd, triage, None);
        let curve: Vec<CurvePoint> = budgets
            .iter()
            .map(|&b| run_arm(crowd, triage, Some(b)).0)
            .collect();
        ArmReport {
            queries: full.queries,
            auto_finalized: full.auto_finalized,
            scored,
            precision: full.precision,
            curve,
        }
    };
    let plain = arm(false);
    let triaged = arm(true);

    // Queries-saved at equal precision: cheapest plain budget whose curve
    // precision reaches the triaged arm's full-run precision.
    let target = triaged.precision - 1e-9;
    let plain_equal_queries = plain
        .curve
        .iter()
        .filter(|p| p.precision >= target)
        .map(|p| p.queries)
        .min()
        .unwrap_or(plain.queries);
    CrowdReport {
        crowd: crowd.name,
        num_objects: crowd.num_objects,
        total_votes: crowd.total_votes(),
        defended: crowd.defended,
        query_reduction: 1.0 - triaged.queries as f64 / plain.queries.max(1) as f64,
        precision_loss: plain.precision - triaged.precision,
        queries_saved_at_equal_precision: plain_equal_queries as i64 - triaged.queries as i64,
        plain,
        triaged,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_triage.json".to_string());

    let crowds = [
        paper_default_crowd(quick),
        adversarial_crowd(AttackKind::Clique, quick),
        adversarial_crowd(AttackKind::Sleeper, quick),
    ];
    let reports: Vec<CrowdReport> = crowds.iter().map(|c| run_crowd(c, quick)).collect();

    let report = BenchReport {
        scenario: format!(
            "exhaustive validation, perfect oracle, triage calibrated defaults{}",
            if quick { " (quick)" } else { "" }
        ),
        precision_gate: PRECISION_GATE,
        query_gate: QUERY_GATE,
        crowds: reports,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write BENCH_triage.json");
    println!("{json}");
    for c in &report.crowds {
        println!(
            "{:22} triaged {:3} queries / {:.4} precision vs plain {:3} / {:.4} | saved {:.0}% queries, auto-finalized {}, equal-precision saving {}",
            c.crowd,
            c.triaged.queries,
            c.triaged.precision,
            c.plain.queries,
            c.plain.precision,
            c.query_reduction * 100.0,
            c.triaged.auto_finalized,
            c.queries_saved_at_equal_precision,
        );
    }

    if check {
        let paper = report
            .crowds
            .iter()
            .find(|c| c.crowd == "paper_default")
            .expect("paper-default crowd is always run");
        let mut failures = Vec::new();
        if paper.precision_loss > PRECISION_GATE {
            failures.push(format!(
                "triaged precision {:.4} trails plain {:.4} by more than the {:.1}pt gate",
                paper.triaged.precision,
                paper.plain.precision,
                PRECISION_GATE * 100.0
            ));
        }
        if paper.triaged.queries as f64 > QUERY_GATE * paper.plain.queries as f64 {
            failures.push(format!(
                "triaged queries {} exceed {:.0}% of plain's {}",
                paper.triaged.queries,
                QUERY_GATE * 100.0,
                paper.plain.queries
            ));
        }
        if paper.triaged.auto_finalized == 0 {
            failures.push("triage never auto-finalized anything".to_string());
        }
        if report.crowds.len() < 3 {
            failures.push("fewer than 3 crowds ran".to_string());
        }
        if failures.is_empty() {
            println!("\ncheck passed: triage gates hold on the paper-default crowd");
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
