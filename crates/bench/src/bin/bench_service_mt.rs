//! Multi-tenant load generator for the sharded service runtime: drives an
//! identical mixed request stream (create / vote batches / guidance /
//! validation / snapshot / close, interleaved across many small tenant
//! tasks) through the single-threaded [`ValidationService`] and through
//! the [`ShardRuntime`] at shard counts {1, 2, 4}, and records throughput
//! plus per-request-kind p50/p99 as `BENCH_service_mt.json`.
//!
//! Every run replays the **same pre-generated envelopes** (no request
//! depends on an earlier reply), so the benchmark doubles as the
//! determinism check of the sharded runtime: each tenant's final snapshot
//! under concurrent dispatch must be bit-identical to the serial run's.
//!
//! Usage: `bench_service_mt [--quick] [--check] [--out <path>]`
//!
//! `--quick` trims the tenant count for CI smoke runs; `--check` exits
//! non-zero on a determinism mismatch at any shard count or when 1-shard
//! throughput falls below 0.9x the single-threaded serial loop (the CI
//! `service-mt-smoke` gate — on the 1-CPU CI runner the dispatch layer
//! must be near-free; multi-shard speedup needs cores and is reported,
//! not gated).

use crowdval_service::{
    ClientVote, Dispatch, OverloadPolicy, Reply, ReplyOutcome, Request, RequestEnvelope, Response,
    RuntimeConfig, ShardRuntime, ShardStats, StrategyChoice, TaskConfig, ValidationService,
};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::mpsc::Receiver;
use std::time::Instant;

const LABELS: [&str; 2] = ["neg", "pos"];
const VOTE_BATCHES: usize = 3;
const GUIDANCE_ROUNDS: usize = 2;
/// Walls are best-of-N: the gate compares a ratio of two measurements, and
/// on a shared single-CPU runner each individual wall is ±25% noisy.
const WALL_REPS: usize = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Create,
    SubmitVotes,
    Guidance,
    Validation,
    Snapshot,
    Close,
}

#[derive(Debug, Serialize)]
struct KindReport {
    requests: usize,
    p50_ms: f64,
    p99_ms: f64,
}

#[derive(Debug, Serialize)]
struct KindBreakdown {
    create: KindReport,
    submit_votes: KindReport,
    guidance: KindReport,
    validation: KindReport,
    snapshot: KindReport,
    close: KindReport,
}

#[derive(Debug, Serialize)]
struct SerialReport {
    wall_ms: f64,
    requests_per_sec: f64,
}

#[derive(Debug, Serialize)]
struct ShardRunReport {
    shards: usize,
    wall_ms: f64,
    requests_per_sec: f64,
    /// Every tenant snapshot bit-identical to the serial run's.
    determinism_ok: bool,
    /// Latency measured submit-to-reply (queue wait included), per kind.
    kinds: KindBreakdown,
    /// Final per-shard counters once every request was served.
    shard_stats: Vec<ShardStats>,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    scenario: String,
    tasks: usize,
    requests: usize,
    serial: SerialReport,
    runs: Vec<ShardRunReport>,
    /// `runs[shards=1].requests_per_sec / serial.requests_per_sec` — the
    /// dispatch-layer overhead the `--check` gate bounds at 0.9x.
    one_shard_vs_serial: f64,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn strategy_for(index: usize) -> StrategyChoice {
    match index % 5 {
        0 => StrategyChoice::Hybrid,
        1 => StrategyChoice::UncertaintyDriven,
        2 => StrategyChoice::WorkerDriven,
        3 => StrategyChoice::EntropyBaseline,
        _ => StrategyChoice::Random,
    }
}

/// One tenant's scripted stream: create, vote batches, guidance/validation
/// rounds (validating *fixed* objects so the stream is reply-independent),
/// a snapshot, and — for every second tenant — a close.
fn task_script(task: &str, index: usize) -> Vec<(Kind, Request)> {
    let mut rng = 0x5eed_0000 + index as u64;
    let mut script = vec![(
        Kind::Create,
        Request::CreateTask {
            task: task.to_string(),
            labels: LABELS.iter().map(|&l| l.to_string()).collect(),
            config: TaskConfig {
                strategy: strategy_for(index),
                seed: index as u64,
                shortlist: Some(8),
                ..TaskConfig::default()
            },
        },
    )];
    for batch in 0..VOTE_BATCHES {
        let votes = (0..12)
            .map(|i| ClientVote {
                worker: format!("w{}", i % 6),
                object: format!("o{}", (i + batch) % 12),
                label: LABELS[(splitmix(&mut rng) % 2) as usize].to_string(),
            })
            .collect();
        script.push((
            Kind::SubmitVotes,
            Request::SubmitVotes {
                task: task.to_string(),
                votes,
            },
        ));
    }
    for round in 0..GUIDANCE_ROUNDS {
        script.push((
            Kind::Guidance,
            Request::RequestGuidance {
                task: task.to_string(),
            },
        ));
        script.push((
            Kind::Validation,
            Request::SubmitValidation {
                task: task.to_string(),
                object: format!("o{round}"),
                label: LABELS[(splitmix(&mut rng) % 2) as usize].to_string(),
            },
        ));
    }
    script.push((
        Kind::Snapshot,
        Request::Snapshot {
            task: task.to_string(),
        },
    ));
    if index.is_multiple_of(2) {
        script.push((
            Kind::Close,
            Request::CloseTask {
                task: task.to_string(),
            },
        ));
    }
    script
}

struct Workload {
    envelopes: Vec<RequestEnvelope>,
    kinds: Vec<Kind>,
    /// Snapshot request id → tenant index, for the determinism diff.
    snapshot_tenant: HashMap<u64, usize>,
    tasks: usize,
}

/// Interleaves all tenant scripts round-robin into one global stream with
/// sequential correlation ids — per-tenant order is stream order, which
/// the sharded runtime preserves.
fn build_workload(tasks: usize) -> Workload {
    let scripts: Vec<Vec<(Kind, Request)>> = (0..tasks)
        .map(|i| task_script(&format!("tenant-{i}"), i))
        .collect();
    let mut envelopes = Vec::new();
    let mut kinds = Vec::new();
    let mut snapshot_tenant = HashMap::new();
    let mut cursors = vec![0usize; tasks];
    let mut next_id = 1u64;
    loop {
        let mut progressed = false;
        for (tenant, script) in scripts.iter().enumerate() {
            if cursors[tenant] < script.len() {
                let (kind, request) = script[cursors[tenant]].clone();
                if kind == Kind::Snapshot {
                    snapshot_tenant.insert(next_id, tenant);
                }
                envelopes.push(RequestEnvelope::new(next_id, request));
                kinds.push(kind);
                next_id += 1;
                cursors[tenant] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    Workload {
        envelopes,
        kinds,
        snapshot_tenant,
        tasks,
    }
}

fn quantile_ms(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let index = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
    sorted[index] * 1000.0
}

fn kind_report(latencies_s: &mut [f64]) -> KindReport {
    latencies_s.sort_by(f64::total_cmp);
    KindReport {
        requests: latencies_s.len(),
        p50_ms: quantile_ms(latencies_s, 0.50),
        p99_ms: quantile_ms(latencies_s, 0.99),
    }
}

fn breakdown(kinds: &[Kind], latencies_s: &[f64]) -> KindBreakdown {
    let mut per_kind: HashMap<u8, Vec<f64>> = HashMap::new();
    for (kind, &latency) in kinds.iter().zip(latencies_s) {
        per_kind.entry(*kind as u8).or_default().push(latency);
    }
    let mut of = |kind: Kind| kind_report(per_kind.entry(kind as u8).or_default());
    KindBreakdown {
        create: of(Kind::Create),
        submit_votes: of(Kind::SubmitVotes),
        guidance: of(Kind::Guidance),
        validation: of(Kind::Validation),
        snapshot: of(Kind::Snapshot),
        close: of(Kind::Close),
    }
}

/// The serial baseline: the whole interleaved stream through one
/// single-threaded service, in order. Returns the best-of-reps wall time
/// and each tenant's serialized final snapshot (the determinism
/// reference).
fn run_serial(workload: &Workload) -> (f64, Vec<Option<String>>) {
    let mut best_wall_s = f64::INFINITY;
    let mut snapshots: Vec<Option<String>> = vec![None; workload.tasks];
    for _ in 0..WALL_REPS {
        let mut service = ValidationService::new();
        snapshots = vec![None; workload.tasks];
        let clock = Instant::now();
        for envelope in &workload.envelopes {
            let reply = service.reply(envelope);
            if let Some(&tenant) = workload.snapshot_tenant.get(&reply.request_id) {
                if let ReplyOutcome::Ok(Response::Snapshot { snapshot, .. }) = &reply.outcome {
                    snapshots[tenant] =
                        Some(serde_json::to_string(snapshot).expect("snapshot serializes"));
                }
            }
        }
        best_wall_s = best_wall_s.min(clock.elapsed().as_secs_f64());
    }
    (best_wall_s, snapshots)
}

fn start_runtime(workload: &Workload, num_shards: usize) -> (ShardRuntime, Receiver<Reply>) {
    // Mailboxes sized to hold the whole stream: the submitting thread never
    // blocks on a full mailbox, so on a single-CPU runner the measurement
    // is not dominated by one wake-the-submitter context switch per served
    // request (the back-pressure path has its own tests and bench knobs).
    ShardRuntime::start(RuntimeConfig {
        num_shards,
        mailbox_capacity: workload.envelopes.len(),
        overload: OverloadPolicy::Block,
        ..RuntimeConfig::default()
    })
}

/// The throughput pass: submit the whole stream, then wait on the shard
/// counters until every request is served. **Nothing receives replies
/// while the clock runs** — they buffer in the reply channel, so each
/// send is a plain enqueue instead of a wake-the-collector context
/// switch, which on a single-CPU runner would otherwise double-count
/// scheduler overhead against the dispatch layer. Replies are drained
/// afterwards for the determinism diff.
fn throughput_pass(
    workload: &Workload,
    num_shards: usize,
    reference: &[Option<String>],
    per_request_hint_s: f64,
) -> (f64, bool, Vec<ShardStats>) {
    let total = workload.envelopes.len();
    let (runtime, replies) = start_runtime(workload, num_shards);
    // Clone the stream before starting the clock: the serial baseline
    // replays by reference, so paying the deep copies inside the timed
    // window would charge an allocation artifact to the dispatch layer.
    let envelopes: Vec<RequestEnvelope> = workload.envelopes.clone();
    let clock = Instant::now();
    for envelope in envelopes {
        match runtime.submit(envelope) {
            Dispatch::Enqueued { .. } => {}
            other => panic!("blocking submit must enqueue, got {other:?}"),
        }
    }
    // Every envelope is shard-routed; the counters settle exactly when all
    // of them have been served. The poll backs off proportionally to the
    // estimated remaining work (halving each time), so completion is
    // detected within ~50µs using only ~log-many wakeups — a fixed
    // fine-grained poll would preempt the draining workers thousands of
    // times on a single-CPU runner and bill that to the dispatch layer.
    let shard_stats = loop {
        let stats = runtime.stats();
        let served = stats.iter().map(|s| s.requests_served).sum::<u64>();
        if served == total as u64 {
            break stats;
        }
        let remaining = (total as u64 - served) as f64;
        let sleep_s = (remaining * per_request_hint_s * 0.4).clamp(50e-6, 20e-3);
        std::thread::sleep(std::time::Duration::from_secs_f64(sleep_s));
    };
    let wall_s = clock.elapsed().as_secs_f64();
    runtime.shutdown();

    let mut snapshots: Vec<Option<String>> = vec![None; workload.tasks];
    let mut drained = 0usize;
    for reply in replies {
        drained += 1;
        if let Some(&tenant) = workload.snapshot_tenant.get(&reply.request_id) {
            if let ReplyOutcome::Ok(Response::Snapshot { snapshot, .. }) = &reply.outcome {
                snapshots[tenant] =
                    Some(serde_json::to_string(snapshot).expect("snapshot serializes"));
            }
        }
    }
    assert_eq!(drained, total, "a reply per request");
    let determinism_ok = snapshots
        .iter()
        .zip(reference)
        .all(|(got, want)| got == want);
    (wall_s, determinism_ok, shard_stats)
}

/// The latency pass: same stream, but a live collector thread timestamps
/// each reply as it arrives, giving true submit-to-reply latencies (queue
/// wait included) per request kind. Kept separate from the throughput
/// pass because the collector's per-reply wakeups perturb wall time on
/// few-core machines.
fn latency_pass(workload: &Workload, num_shards: usize) -> KindBreakdown {
    let total = workload.envelopes.len();
    let (runtime, replies) = start_runtime(workload, num_shards);
    let envelopes: Vec<RequestEnvelope> = workload.envelopes.clone();
    let clock = Instant::now();
    let collector = std::thread::spawn(move || {
        let mut arrivals_s: Vec<f64> = vec![f64::NAN; total];
        for reply in replies {
            arrivals_s[(reply.request_id - 1) as usize] = clock.elapsed().as_secs_f64();
        }
        arrivals_s
    });

    let mut submits_s: Vec<f64> = Vec::with_capacity(total);
    for envelope in envelopes {
        submits_s.push(clock.elapsed().as_secs_f64());
        match runtime.submit(envelope) {
            Dispatch::Enqueued { .. } => {}
            other => panic!("blocking submit must enqueue, got {other:?}"),
        }
    }
    runtime.shutdown();
    let arrivals_s = collector.join().expect("reply collector panicked");
    let latencies_s: Vec<f64> = arrivals_s
        .iter()
        .zip(&submits_s)
        .map(|(arrival, submit)| arrival - submit)
        .collect();
    breakdown(&workload.kinds, &latencies_s)
}

/// One sharded run: best-of-reps throughput passes (gated, determinism
/// checked on every rep) plus one latency pass (reported).
fn run_sharded(
    workload: &Workload,
    num_shards: usize,
    reference: &[Option<String>],
    per_request_hint_s: f64,
) -> ShardRunReport {
    let total = workload.envelopes.len();
    let mut best_wall_s = f64::INFINITY;
    let mut determinism_ok = true;
    let mut shard_stats = Vec::new();
    for _ in 0..WALL_REPS {
        let (wall_s, rep_ok, stats) =
            throughput_pass(workload, num_shards, reference, per_request_hint_s);
        determinism_ok &= rep_ok;
        if wall_s < best_wall_s {
            best_wall_s = wall_s;
            shard_stats = stats;
        }
    }
    let kinds = latency_pass(workload, num_shards);
    ShardRunReport {
        shards: num_shards,
        wall_ms: best_wall_s * 1000.0,
        requests_per_sec: total as f64 / best_wall_s.max(1e-12),
        determinism_ok,
        kinds,
        shard_stats,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_service_mt.json".to_string());

    let tasks = if quick { 200 } else { 1000 };
    let workload = build_workload(tasks);
    let total = workload.envelopes.len();
    eprintln!("workload: {tasks} tenant tasks, {total} requests");

    let (serial_wall_s, reference) = run_serial(&workload);
    assert!(
        reference.iter().all(Option::is_some),
        "every tenant must snapshot in the serial baseline"
    );
    let serial = SerialReport {
        wall_ms: serial_wall_s * 1000.0,
        requests_per_sec: total as f64 / serial_wall_s.max(1e-12),
    };
    eprintln!(
        "serial: {:.0} req/s ({:.0} ms)",
        serial.requests_per_sec, serial.wall_ms
    );

    let per_request_hint_s = serial_wall_s / total as f64;
    let mut runs = Vec::new();
    for shards in [1usize, 2, 4] {
        let run = run_sharded(&workload, shards, &reference, per_request_hint_s);
        eprintln!(
            "{} shard(s): {:.0} req/s ({:.0} ms), determinism {}",
            shards,
            run.requests_per_sec,
            run.wall_ms,
            if run.determinism_ok { "ok" } else { "MISMATCH" }
        );
        runs.push(run);
    }

    let one_shard_vs_serial = runs[0].requests_per_sec / serial.requests_per_sec.max(1e-12);
    let determinism_ok = runs.iter().all(|r| r.determinism_ok);
    let report = BenchReport {
        scenario: format!(
            "{tasks} tiny tenants (12 objects, 6 workers, 2 labels), mixed \
             create/votes/guidance/validation/snapshot/close, round-robin interleaved"
        ),
        tasks,
        requests: total,
        serial,
        runs,
        one_shard_vs_serial,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("report written");
    println!("{json}");

    if check {
        let mut failed = false;
        if !determinism_ok {
            eprintln!("FAIL: a sharded run's snapshots diverged from the serial baseline");
            failed = true;
        }
        if one_shard_vs_serial < 0.9 {
            eprintln!(
                "FAIL: 1-shard throughput is {one_shard_vs_serial:.2}x the serial loop \
                 (gate: 0.9x)"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: determinism ok at all shard counts, 1-shard throughput \
             {one_shard_vs_serial:.2}x serial (gate 0.9x)"
        );
    }
}
