//! Online-defense benchmark: replays the adversarial streaming scenarios
//! from [`crowdval_sim::AdversarialConfig`] (colluding clique, sleeper
//! spammers, drifting reliability, label-copiers) through two arms of the
//! same [`ValidationSession`] and records the result as `BENCH_spam.json`:
//!
//! * `undefended` — plain anchored i-EM, no worker exclusion of any kind
//!   (`handle_faulty_workers: false`): the attackers' votes stay in the
//!   posterior for the whole stream.
//! * `defended`  — the streaming trust ledger
//!   ([`TrustConfig::streaming_default`]): pre-EM heuristics plus
//!   expert-anchored error rates tombstone attackers mid-stream.
//!
//! Both arms see the identical vote stream and spend the identical expert
//! budget (a perfect oracle validating after every batch), so the reported
//! numbers isolate the defense:
//!
//! * **detection latency** — votes ingested when each attacker is first
//!   tombstoned (mean/max across attackers, plus how many were caught);
//! * **posterior accuracy** — precision of the final deterministic
//!   assignment against the ground truth, defended vs undefended.
//!
//! Usage: `bench_spam [--quick] [--check] [--out <path>]`
//!
//! `--quick` shrinks the scenarios for CI smoke runs; `--check` exits
//! non-zero unless, under the clique attack, the defended arm is strictly
//! more accurate than the undefended arm, every clique attacker is caught
//! within the first 85% of the stream, and at most one honest worker is
//! still excluded at stream end (the CI `spam-smoke` gate).

use crowdval_core::{HybridStrategy, ProcessConfig, ValidationSession, ValidationSessionBuilder};
use crowdval_model::WorkerId;
use crowdval_sim::{
    AdversarialConfig, AdversarialScenario, AttackKind, PopulationMix, StreamingConfig,
    SyntheticConfig,
};
use crowdval_spammer::TrustConfig;
use serde::Serialize;
use std::collections::BTreeMap;

/// Expert validations integrated after every arrival batch (both arms).
const VALIDATIONS_PER_BATCH: usize = 1;

/// Seed base for the scenario fixtures (`+ attack` per scenario).
const SEED_BASE: u64 = 31_000;

#[derive(Debug, Serialize)]
struct ArmReport {
    /// Precision of the final deterministic assignment vs ground truth.
    precision: f64,
    /// Expert validations spent.
    validations: usize,
    /// Workers excluded when the stream ended.
    final_excluded: usize,
    /// Attackers among the final excluded set.
    attackers_excluded: usize,
    /// Honest workers among the final excluded set (false positives).
    honest_excluded: usize,
    /// Ledger reinstatements over the run.
    reinstatements: u64,
    /// Votes ingested when each caught attacker was first tombstoned.
    detection_latency_votes: Vec<usize>,
    /// Mean of `detection_latency_votes` (0 when nothing was caught).
    mean_detection_latency_votes: f64,
    /// Max of `detection_latency_votes` (0 when nothing was caught).
    max_detection_latency_votes: usize,
}

#[derive(Debug, Serialize)]
struct ScenarioReport {
    attack: &'static str,
    total_votes: usize,
    attacker_votes: usize,
    num_attackers: usize,
    undefended: ArmReport,
    defended: ArmReport,
    /// `defended.precision - undefended.precision`.
    precision_gain: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    scenario: String,
    num_objects: usize,
    num_workers_honest: usize,
    num_labels: usize,
    validations_per_batch: usize,
    scenarios: Vec<ScenarioReport>,
}

/// The shared honest crowd under attack: 3 labels so a clique's `truth+1`
/// votes cannot be re-inverted into signal by the confusion matrices, and
/// moderate reliability so attacker votes measurably move the posterior.
fn scenario(attack: AttackKind, quick: bool, seed: u64) -> AdversarialScenario {
    let (num_objects, batch_size) = if quick { (30, 30) } else { (80, 45) };
    AdversarialConfig {
        base: StreamingConfig {
            base: SyntheticConfig {
                num_objects,
                num_workers: 10,
                num_labels: 3,
                reliability: 0.85,
                mix: PopulationMix::all_reliable(),
                ..SyntheticConfig::paper_default(seed)
            },
            initial_fraction: 0.1,
            batch_size,
            late_object_fraction: 0.3,
            late_worker_fraction: 0.25,
        },
        attack,
        num_attackers: 6,
        sleeper_honest_votes: if quick { 8 } else { 12 },
    }
    .generate()
}

/// Streams one scenario through one session arm with a perfect oracle and
/// returns the accuracy/detection report.
fn run_arm(scenario: &AdversarialScenario, trust: Option<TrustConfig>, seed: u64) -> ArmReport {
    let config = match trust {
        Some(trust) => ProcessConfig {
            trust,
            ..ProcessConfig::default()
        },
        None => ProcessConfig {
            handle_faulty_workers: false,
            ..ProcessConfig::default()
        },
    };
    let mut session = ValidationSessionBuilder::empty(scenario.num_labels)
        .strategy(Box::new(HybridStrategy::new(seed)))
        .config(config)
        .ground_truth(scenario.truth.clone())
        .try_build()
        .expect("bench scenario is well-formed");

    let mut first_excluded: BTreeMap<WorkerId, usize> = BTreeMap::new();
    let mut note_exclusions = |session: &ValidationSession| {
        for worker in session.excluded_workers() {
            first_excluded
                .entry(worker)
                .or_insert_with(|| session.votes_ingested());
        }
    };

    session.ingest(&scenario.initial).expect("initial ingest");
    note_exclusions(&session);
    let mut validations = 0;
    for batch in &scenario.batches {
        session.ingest(batch).expect("batch ingest");
        note_exclusions(&session);
        for _ in 0..VALIDATIONS_PER_BATCH {
            let Some(object) = session.select_next() else {
                break;
            };
            session
                .integrate(object, scenario.truth.label(object))
                .expect("oracle label is in range");
            validations += 1;
            note_exclusions(&session);
        }
    }

    let excluded = session.excluded_workers();
    let is_attacker = |w: &WorkerId| scenario.attackers.binary_search(w).is_ok();
    let attackers_excluded = excluded.iter().filter(|w| is_attacker(w)).count();
    let latencies: Vec<usize> = scenario
        .attackers
        .iter()
        .filter_map(|w| first_excluded.get(w).copied())
        .collect();
    ArmReport {
        precision: session.precision().expect("ground truth is attached"),
        validations,
        final_excluded: excluded.len(),
        attackers_excluded,
        honest_excluded: excluded.len() - attackers_excluded,
        reinstatements: session.defense_telemetry().reinstatements,
        mean_detection_latency_votes: if latencies.is_empty() {
            0.0
        } else {
            latencies.iter().sum::<usize>() as f64 / latencies.len() as f64
        },
        max_detection_latency_votes: latencies.iter().copied().max().unwrap_or(0),
        detection_latency_votes: latencies,
    }
}

fn run_scenario(attack: AttackKind, quick: bool) -> ScenarioReport {
    let scenario = scenario(attack, quick, SEED_BASE + attack as u64);
    let undefended = run_arm(&scenario, None, 9);
    let defended = run_arm(&scenario, Some(TrustConfig::streaming_default()), 9);
    ScenarioReport {
        attack: attack.name(),
        total_votes: scenario.total_votes(),
        attacker_votes: scenario.attacker_votes(),
        num_attackers: scenario.attackers.len(),
        precision_gain: defended.precision - undefended.precision,
        undefended,
        defended,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_spam.json".to_string());

    let attacks = [
        AttackKind::Clique,
        AttackKind::Sleeper,
        AttackKind::Drift,
        AttackKind::LabelCopier,
    ];
    let scenarios: Vec<ScenarioReport> = attacks.iter().map(|&a| run_scenario(a, quick)).collect();

    let sample = scenario(AttackKind::Clique, quick, SEED_BASE);
    let report = BenchReport {
        scenario: format!(
            "all-reliable crowd + 5 riders per attack, perfect oracle{}",
            if quick { " (quick)" } else { "" }
        ),
        num_objects: sample.honest.config.base.num_objects,
        num_workers_honest: sample.honest.config.base.num_workers,
        num_labels: sample.num_labels,
        validations_per_batch: VALIDATIONS_PER_BATCH,
        scenarios,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, &json).expect("write BENCH_spam.json");
    println!("{json}");
    for s in &report.scenarios {
        println!(
            "{:8} defended {:.3} vs undefended {:.3} (gain {:+.3}) | caught {}/{} attackers, mean latency {:.0} votes",
            s.attack,
            s.defended.precision,
            s.undefended.precision,
            s.precision_gain,
            s.defended.attackers_excluded,
            s.num_attackers,
            s.defended.mean_detection_latency_votes,
        );
    }

    if check {
        let clique = report
            .scenarios
            .iter()
            .find(|s| s.attack == "clique")
            .expect("clique scenario is always run");
        let mut failures = Vec::new();
        if clique.defended.precision <= clique.undefended.precision {
            failures.push(format!(
                "defended clique precision {:.4} must strictly beat undefended {:.4}",
                clique.defended.precision, clique.undefended.precision
            ));
        }
        if clique.defended.attackers_excluded < clique.num_attackers {
            failures.push(format!(
                "only {}/{} clique attackers tombstoned",
                clique.defended.attackers_excluded, clique.num_attackers
            ));
        }
        // Transient honest exclusions are by design recoverable (the
        // hysteresis reinstates them as exonerating validations arrive);
        // the stream may simply end mid-recovery. One still-excluded
        // honest worker is tolerated, a second means the heuristics are
        // misfiring.
        if clique.defended.honest_excluded > 1 {
            failures.push(format!(
                "{} honest workers left excluded under the clique attack",
                clique.defended.honest_excluded
            ));
        }
        let latency_gate = (clique.total_votes as f64 * 0.85).ceil() as usize;
        if clique.defended.max_detection_latency_votes > latency_gate {
            failures.push(format!(
                "max detection latency {} votes exceeds the gate of {latency_gate}",
                clique.defended.max_detection_latency_votes
            ));
        }
        if report.scenarios.len() < 3 {
            failures.push("fewer than 3 adversarial scenarios ran".to_string());
        }
        if failures.is_empty() {
            println!("\ncheck passed: defense gates hold under the clique attack");
        } else {
            for f in &failures {
                eprintln!("check FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}
