//! Service-layer benchmark: measures the request throughput/latency of the
//! [`crowdval_service::ValidationService`] front door — vote submission,
//! guidance and snapshotting — and records the result as
//! `BENCH_service.json` so the cost of the protocol boundary (external-id
//! interning, envelope dispatch, snapshot serialization) is a tracked
//! number rather than a claim.
//!
//! The scenario mirrors `bench_ingest`'s paper-default stream (same corpus
//! scale, single-threaded) so the headline numbers are comparable: a
//! guidance request through the service should cost what a
//! `select_next` costs in-process, give or take the boundary overhead.
//!
//! Usage: `bench_service [--quick] [--check] [--out <path>] [--ingest <path>]`
//!
//! `--quick` trims the repetition counts for CI smoke runs; `--check` exits
//! non-zero when the guidance p50 through the service regresses to more
//! than 2x the in-process guidance latency recorded in the committed
//! `BENCH_ingest.json` (the CI `service-smoke` gate).

use crowdval_service::{
    ClientVote, Request, RequestEnvelope, Response, StrategyChoice, TaskConfig, ValidationService,
};
use crowdval_sim::{StreamingConfig, SyntheticConfig};
use serde::{Deserialize, Serialize};
use std::time::Instant;

const LABELS: [&str; 2] = ["neg", "pos"];
const TASK: &str = "bench";

/// The slice of `BENCH_ingest.json` the regression gate reads.
#[derive(Debug, Deserialize)]
struct IngestReference {
    guidance_latency_ms: f64,
}

#[derive(Debug, Serialize)]
struct PathReport {
    requests: usize,
    requests_per_sec: f64,
    p50_ms: f64,
    mean_ms: f64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    scenario: String,
    total_votes: usize,
    batches: usize,
    final_objects: usize,
    final_workers: usize,
    /// `SubmitVotes` envelopes (one per arrival batch).
    submit: PathReport,
    /// Votes absorbed per second across all submit requests.
    submit_votes_per_sec: f64,
    /// `RequestGuidance` + `SubmitValidation` pairs on the grown corpus.
    guidance: PathReport,
    /// `Snapshot` requests on the grown corpus (serialization included).
    snapshot: PathReport,
    /// In-process guidance latency from `BENCH_ingest.json`, when present.
    ingest_guidance_latency_ms: Option<f64>,
    /// `guidance.p50_ms / ingest_guidance_latency_ms` — the boundary
    /// overhead factor the `--check` gate bounds at 2x.
    guidance_overhead_factor: Option<f64>,
}

fn path_report(walls_ms: &mut [f64]) -> PathReport {
    let mean = walls_ms.iter().sum::<f64>() / walls_ms.len().max(1) as f64;
    walls_ms.sort_by(f64::total_cmp);
    let p50 = walls_ms
        .get(walls_ms.len() / 2)
        .copied()
        .unwrap_or(f64::NAN);
    PathReport {
        requests: walls_ms.len(),
        requests_per_sec: 1000.0 / mean.max(1e-12),
        p50_ms: p50,
        mean_ms: mean,
    }
}

fn send(service: &mut ValidationService, request: Request) -> Response {
    service
        .handle(&RequestEnvelope::latest(request))
        .expect("benchmark requests are well-formed")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_service.json".to_string());
    let ingest_path = flag("--ingest").unwrap_or_else(|| "BENCH_ingest.json".to_string());

    // Same corpus scale as the committed full bench_ingest run, so the
    // guidance comparison is apples-to-apples; --quick only trims the
    // repetition counts.
    let (guidance_rounds, snapshot_rounds) = if quick { (6, 10) } else { (15, 30) };
    let scenario = StreamingConfig {
        base: SyntheticConfig {
            num_objects: 150,
            num_workers: 32,
            ..SyntheticConfig::paper_default(91000)
        },
        initial_fraction: 0.3,
        batch_size: 100,
        late_object_fraction: 0.25,
        late_worker_fraction: 0.2,
    }
    .generate();
    let truth = scenario.truth.clone();
    let rename = |votes: &[crowdval_model::Vote]| -> Vec<ClientVote> {
        votes
            .iter()
            .map(|v| ClientVote {
                worker: format!("w{}", v.worker.index()),
                object: format!("obj{}", v.object.index()),
                label: LABELS[v.label.index()].to_string(),
            })
            .collect()
    };

    let mut service = ValidationService::new();
    send(
        &mut service,
        Request::CreateTask {
            task: TASK.into(),
            labels: LABELS.iter().map(|&l| l.to_string()).collect(),
            // Mirror bench_ingest's in-process configuration (uncertainty
            // guidance, shortlist 16, two validation anchors) so the p50
            // comparison isolates the protocol boundary, not config drift.
            config: TaskConfig {
                strategy: StrategyChoice::UncertaintyDriven,
                seed: 7,
                shortlist: Some(16),
                ..TaskConfig::default()
            },
        },
    );

    // --- SubmitVotes: the whole arrival schedule, one envelope per batch.
    let mut submit_walls: Vec<f64> = Vec::new();
    let mut total_votes = 0usize;
    let mut all_batches = vec![rename(&scenario.initial)];
    all_batches.extend(scenario.batches.iter().map(|b| rename(b)));
    let mut anchored = false;
    for batch in &all_batches {
        total_votes += batch.len();
        let start = Instant::now();
        send(
            &mut service,
            Request::SubmitVotes {
                task: TASK.into(),
                votes: batch.clone(),
            },
        );
        submit_walls.push(start.elapsed().as_secs_f64() * 1000.0);
        if !anchored {
            // Two truth-label anchors right after the initial snapshot, like
            // bench_ingest — below two validations the hypothesis scorer
            // falls back to the exact path and the comparison would measure
            // that, not the boundary.
            let mut anchor_objects: Vec<crowdval_model::ObjectId> = Vec::new();
            for vote in &scenario.initial {
                if !anchor_objects.contains(&vote.object) {
                    anchor_objects.push(vote.object);
                }
                if anchor_objects.len() == 2 {
                    break;
                }
            }
            for o in anchor_objects {
                send(
                    &mut service,
                    Request::SubmitValidation {
                        task: TASK.into(),
                        object: format!("obj{}", o.index()),
                        label: LABELS[truth.label(o).index()].to_string(),
                    },
                );
            }
            anchored = true;
        }
    }
    let submit_wall_total: f64 = submit_walls.iter().sum();

    // --- Guidance on the fully grown, anchored corpus: the latency the
    // expert waits on (bench_ingest measures the same point in-process).
    // Each guided object is validated before the next request — without a
    // state change in between, every repeat would be a pure exact-cache hit
    // of the cross-step guidance cache and the p50 would measure a lookup,
    // not the selection work the 2x boundary gate was built to bound.
    let mut guidance_walls: Vec<f64> = Vec::new();
    for _ in 0..guidance_rounds {
        let start = Instant::now();
        let reply = send(&mut service, Request::RequestGuidance { task: TASK.into() });
        guidance_walls.push(start.elapsed().as_secs_f64() * 1000.0);
        let Response::Guidance {
            object: Some(object),
            ..
        } = reply
        else {
            break;
        };
        let index: usize = object
            .strip_prefix("obj")
            .and_then(|i| i.parse().ok())
            .expect("bench object ids are obj<N>");
        send(
            &mut service,
            Request::SubmitValidation {
                task: TASK.into(),
                object,
                label: LABELS[truth.label(crowdval_model::ObjectId(index)).index()].to_string(),
            },
        );
    }

    // --- Snapshot: checkpoint the grown task repeatedly.
    let mut snapshot_walls: Vec<f64> = Vec::new();
    for _ in 0..snapshot_rounds {
        let start = Instant::now();
        send(&mut service, Request::Snapshot { task: TASK.into() });
        snapshot_walls.push(start.elapsed().as_secs_f64() * 1000.0);
    }

    let ingest_reference: Option<f64> = std::fs::read_to_string(&ingest_path)
        .ok()
        .and_then(|text| serde_json::from_str::<IngestReference>(&text).ok())
        .map(|r| r.guidance_latency_ms);

    let guidance = path_report(&mut guidance_walls);
    let overhead = ingest_reference.map(|ms| guidance.p50_ms / ms);
    let report = BenchReport {
        scenario: "paper-default stream, seed 91000, single-threaded, through the service"
            .to_string(),
        total_votes,
        batches: all_batches.len(),
        final_objects: scenario.synth.dataset.answers().num_objects(),
        final_workers: scenario.synth.dataset.answers().num_workers(),
        submit: path_report(&mut submit_walls),
        submit_votes_per_sec: total_votes as f64 / (submit_wall_total / 1000.0).max(1e-12),
        guidance,
        snapshot: path_report(&mut snapshot_walls),
        ingest_guidance_latency_ms: ingest_reference,
        guidance_overhead_factor: overhead,
    };

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, format!("{json}\n")).expect("report written");
    println!("{json}");

    if check {
        match overhead {
            Some(factor) if factor > 2.0 => {
                eprintln!(
                    "FAIL: guidance p50 through the service is {factor:.2}x the in-process \
                     latency recorded in {ingest_path} (gate: 2x)"
                );
                std::process::exit(1);
            }
            Some(factor) => {
                println!("check passed: guidance overhead factor {factor:.2} <= 2x");
            }
            None => {
                eprintln!(
                    "WARN: {ingest_path} missing or unreadable; skipping the guidance \
                     regression gate"
                );
            }
        }
    }
}
