//! Numerical substrate for the crowd-validation workspace.
//!
//! The paper relies on a handful of numerical primitives:
//!
//! * dense row-major matrices with a Frobenius norm (worker confusion matrices,
//!   probabilistic assignment matrices),
//! * the distance of a matrix to its closest rank-one approximation (the
//!   spammer score of §5.3, computed from the largest singular value),
//! * Shannon entropy of discrete distributions (§4.2),
//! * summary statistics (mean, standard deviation, Pearson correlation,
//!   histograms) used throughout the evaluation.
//!
//! Everything is implemented from scratch on `f64`; no external linear-algebra
//! crate is used. Matrices in this workspace are tiny (labels × labels or
//! objects × labels), so clarity and numerical robustness are preferred over
//! cache-blocking tricks.

pub mod entropy;
pub mod matrix;
pub mod stats;
pub mod svd;

pub use entropy::{shannon_entropy, shannon_entropy_normalized};
pub use matrix::Matrix;
pub use stats::{fleiss_kappa, mean, pearson_correlation, population_std_dev, Histogram, Summary};
pub use svd::{largest_singular_value, rank_one_distance};
