//! A minimal dense, row-major `f64` matrix.
//!
//! The workspace only ever manipulates small matrices (a confusion matrix is
//! `labels × labels`, an assignment matrix is `objects × labels`), so the type
//! favours a simple contiguous representation and panics on dimension misuse,
//! mirroring the behaviour of indexing a `Vec` out of bounds.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64` values.
#[derive(Clone, PartialEq, Serialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Manual deserialization so the shape invariant (`data.len() == rows *
/// cols`) is enforced at the trust boundary — session snapshots arrive from
/// untrusted service clients, and a matrix claiming more cells than it
/// carries would turn every indexed read into an out-of-bounds panic.
impl Deserialize for Matrix {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected matrix object"))?;
        let rows = usize::from_value(serde::get_field(entries, "rows")?)?;
        let cols = usize::from_value(serde::get_field(entries, "cols")?)?;
        let data = Vec::<f64>::from_value(serde::get_field(entries, "data")?)?;
        let expected = rows
            .checked_mul(cols)
            .ok_or_else(|| serde::Error::custom("matrix shape overflows"))?;
        if data.len() != expected {
            return Err(serde::Error::custom(format!(
                "matrix claims {rows}x{cols} = {expected} cells but carries {}",
                data.len()
            )));
        }
        Ok(Matrix { rows, cols, data })
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested rows.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the element at `(row, col)` or `None` when out of range.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Immutable view of a row.
    pub fn row(&self, row: usize) -> &[f64] {
        assert!(
            row < self.rows,
            "row {} out of bounds ({} rows)",
            row,
            self.rows
        );
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of a row.
    pub fn row_mut(&mut self, row: usize) -> &mut [f64] {
        assert!(
            row < self.rows,
            "row {} out of bounds ({} rows)",
            row,
            self.rows
        );
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies a column into a new vector.
    pub fn col(&self, col: usize) -> Vec<f64> {
        assert!(
            col < self.cols,
            "col {} out of bounds ({} cols)",
            col,
            self.cols
        );
        (0..self.rows).map(|r| self[(r, col)]).collect()
    }

    /// Flat row-major slice of the matrix contents.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major slice of the matrix contents. Rows are
    /// contiguous `cols`-sized windows, which is what lets the blocked
    /// parallel EM kernels hand disjoint row ranges to worker threads via
    /// `chunks_mut`.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Iterator over `(row, col, value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(i, &v)| (i / cols, i % cols, v))
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Sum of the entries of one row.
    pub fn row_sum(&self, row: usize) -> f64 {
        self.row(row).iter().sum()
    }

    /// Sum of the entries of one column.
    pub fn col_sum(&self, col: usize) -> f64 {
        (0..self.rows).map(|r| self[(r, col)]).sum()
    }

    /// Sum of the main-diagonal entries (trace).
    pub fn trace(&self) -> f64 {
        (0..self.rows.min(self.cols)).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Squared Frobenius norm `Σ a_ij²`.
    pub fn frobenius_norm_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>()
    }

    /// Largest absolute element-wise difference to another matrix.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Element-wise difference `self - other` as a new matrix.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiplies every entry by `factor`, in place.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Adds `value` to every entry, in place. Useful for Laplace smoothing.
    pub fn add_scalar(&mut self, value: f64) {
        for v in &mut self.data {
            *v += value;
        }
    }

    /// Overwrites every entry with `value`, in place (allocation-free reset
    /// of a scratch buffer).
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Copies the contents of `other` into `self`, in place.
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn copy_from(&mut self, other: &Matrix) {
        assert_eq!(self.rows, other.rows, "row mismatch");
        assert_eq!(self.cols, other.cols, "col mismatch");
        self.data.copy_from_slice(&other.data);
    }

    /// Normalizes every row so it sums to one.
    ///
    /// Rows that sum to zero (or to a non-finite value) are replaced with the
    /// uniform distribution, which is the convention used throughout the EM
    /// estimators: a worker that never answered an object of some true label
    /// carries no evidence and must not contribute a hard zero.
    pub fn normalize_rows(&mut self) {
        let cols = self.cols;
        if cols == 0 {
            return;
        }
        for r in 0..self.rows {
            let row = self.row_mut(r);
            let sum: f64 = row.iter().sum();
            if sum > 0.0 && sum.is_finite() {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            } else {
                let uniform = 1.0 / cols as f64;
                for v in row.iter_mut() {
                    *v = uniform;
                }
            }
        }
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn mat_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "vector length must equal column count");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Transposed matrix–vector product `selfᵀ * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn mat_vec_transposed(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "vector length must equal row count");
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            let row = self.row(r);
            for (o, a) in out.iter_mut().zip(row) {
                *o += a * vr;
            }
        }
        out
    }

    /// True when every entry is finite and every row sums to one within `tol`.
    pub fn is_row_stochastic(&self, tol: f64) -> bool {
        (0..self.rows).all(|r| {
            let row = self.row(r);
            row.iter().all(|v| v.is_finite() && *v >= -tol)
                && (row.iter().sum::<f64>() - 1.0).abs() <= tol
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (row, col): (usize, usize)) -> &f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds"
        );
        &self.data[row * self.cols + col]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut f64 {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row}, {col}) out of bounds"
        );
        &mut self.data[row * self.cols + col]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for v in self.row(r) {
                write!(f, " {v:.4}")?;
            }
            writeln!(f, " ]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_expected_shape_and_values() {
        let m = Matrix::zeros(3, 2);
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 2);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_has_unit_diagonal() {
        let m = Matrix::identity(4);
        assert_eq!(m.trace(), 4.0);
        assert_eq!(m.sum(), 4.0);
        assert_eq!(m[(2, 2)], 1.0);
        assert_eq!(m[(2, 1)], 0.0);
    }

    #[test]
    fn from_rows_round_trips_values() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn from_vec_checks_length() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
        assert_eq!(m, Matrix::identity(2));
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_rejects_wrong_length() {
        Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn frobenius_norm_matches_hand_computation() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert!((m.frobenius_norm_sq() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_rows_creates_distributions() {
        let mut m = Matrix::from_rows(&[vec![2.0, 2.0], vec![0.0, 0.0], vec![1.0, 3.0]]);
        m.normalize_rows();
        assert!(m.is_row_stochastic(1e-12));
        assert_eq!(m.row(0), &[0.5, 0.5]);
        // zero row falls back to uniform
        assert_eq!(m.row(1), &[0.5, 0.5]);
        assert_eq!(m.row(2), &[0.25, 0.75]);
    }

    #[test]
    fn row_and_col_sums() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.row_sum(0), 3.0);
        assert_eq!(m.col_sum(1), 6.0);
        assert_eq!(m.sum(), 10.0);
    }

    #[test]
    fn mat_vec_products() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.mat_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
        assert_eq!(m.mat_vec_transposed(&[1.0, 1.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn sub_and_max_abs_diff() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![0.5, 4.0]]);
        let d = a.sub(&b);
        assert_eq!(d.row(0), &[0.5, -2.0]);
        assert_eq!(a.max_abs_diff(&b), 2.0);
    }

    #[test]
    fn scale_and_add_scalar() {
        let mut m = Matrix::filled(2, 2, 1.0);
        m.scale(3.0);
        assert_eq!(m.sum(), 12.0);
        m.add_scalar(1.0);
        assert_eq!(m.sum(), 16.0);
    }

    #[test]
    fn get_returns_none_out_of_bounds() {
        let m = Matrix::zeros(2, 2);
        assert!(m.get(1, 1).is_some());
        assert!(m.get(2, 0).is_none());
        assert!(m.get(0, 2).is_none());
    }

    #[test]
    fn iter_visits_all_cells() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let cells: Vec<_> = m.iter().collect();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[3], (1, 1, 4.0));
    }
}
