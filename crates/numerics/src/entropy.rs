//! Shannon entropy of discrete distributions (paper §4.2, Eq. 6).
//!
//! The uncertainty of an object is the entropy of its label distribution, and
//! the uncertainty of a probabilistic answer set is the sum over objects
//! (Eq. 7). Entropy is measured in nats unless stated otherwise; the guidance
//! strategies only ever compare entropies, so the base is irrelevant as long
//! as it is used consistently.

/// Shannon entropy `−Σ p log p` (natural logarithm) of a discrete
/// distribution. Zero-probability entries contribute zero by convention.
///
/// The input does not need to be exactly normalized; the caller is expected to
/// pass a probability distribution, but small floating-point drift is
/// tolerated and negative values are clamped to zero.
pub fn shannon_entropy(probabilities: &[f64]) -> f64 {
    probabilities
        .iter()
        .map(|&p| {
            let p = p.max(0.0);
            if p > 0.0 {
                -p * p.ln()
            } else {
                0.0
            }
        })
        .sum()
}

/// Entropy normalized by the maximum possible entropy `ln(m)` for `m`
/// outcomes, yielding a value in `[0, 1]`. Distributions over a single
/// outcome have zero entropy by definition and return `0.0`.
pub fn shannon_entropy_normalized(probabilities: &[f64]) -> f64 {
    let m = probabilities.len();
    if m <= 1 {
        return 0.0;
    }
    shannon_entropy(probabilities) / (m as f64).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_certain_outcome_is_zero() {
        assert_eq!(shannon_entropy(&[1.0, 0.0, 0.0]), 0.0);
        assert_eq!(shannon_entropy_normalized(&[0.0, 1.0]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_distribution_is_log_m() {
        let h = shannon_entropy(&[0.25; 4]);
        assert!((h - 4.0_f64.ln()).abs() < 1e-12);
        assert!((shannon_entropy_normalized(&[0.25; 4]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn entropy_is_maximal_for_uniform() {
        let uniform = shannon_entropy(&[0.5, 0.5]);
        let skewed = shannon_entropy(&[0.9, 0.1]);
        assert!(uniform > skewed);
        assert!(skewed > 0.0);
    }

    #[test]
    fn empty_and_singleton_distributions() {
        assert_eq!(shannon_entropy(&[]), 0.0);
        assert_eq!(shannon_entropy_normalized(&[]), 0.0);
        assert_eq!(shannon_entropy_normalized(&[1.0]), 0.0);
    }

    #[test]
    fn small_negative_noise_is_clamped() {
        let h = shannon_entropy(&[1.0 + 1e-15, -1e-15]);
        assert!(h.abs() < 1e-12);
    }
}
