//! Rank-one approximation distance via the largest singular value.
//!
//! The worker-driven guidance strategy (paper §5.3) scores a worker by the
//! distance of its validation-based confusion matrix to the closest rank-one
//! matrix under the Frobenius norm (Eq. 11). By the Eckart–Young theorem the
//! closest rank-one approximation is `σ₁ u₁ v₁ᵀ` and the distance is
//! `sqrt(Σ_{i≥2} σ_i²) = sqrt(‖F‖_F² − σ₁²)`, so only the largest singular
//! value is needed. We compute it with power iteration on `FᵀF`, which is
//! robust and cheap for the tiny `labels × labels` matrices involved.

use crate::matrix::Matrix;

/// Default number of power-iteration steps; confusion matrices are at most a
/// handful of rows/columns, so convergence is fast.
const DEFAULT_ITERATIONS: usize = 200;
/// Convergence tolerance on the Rayleigh-quotient estimate of σ₁².
const DEFAULT_TOLERANCE: f64 = 1e-12;

/// Returns the largest singular value of `m`.
///
/// Uses power iteration on the Gram matrix `mᵀm`: the dominant eigenvalue of
/// `mᵀm` is `σ₁²`. The zero matrix (and empty matrices) yield `0.0`.
pub fn largest_singular_value(m: &Matrix) -> f64 {
    if m.rows() == 0 || m.cols() == 0 {
        return 0.0;
    }
    let norm_sq = m.frobenius_norm_sq();
    if norm_sq == 0.0 {
        return 0.0;
    }

    // Start from a deterministic, non-degenerate vector: ones normalized, with
    // a small linear ramp that breaks symmetry when ones happens to be in the
    // null space of mᵀm.
    let n = m.cols();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 + 1.0) * 1e-3).collect();
    normalize(&mut v);

    let mut sigma_sq_prev = 0.0;
    for _ in 0..DEFAULT_ITERATIONS {
        // w = mᵀ (m v): one multiplication by the Gram matrix.
        let mv = m.mat_vec(&v);
        let mut w = m.mat_vec_transposed(&mv);
        let sigma_sq: f64 = v.iter().zip(&w).map(|(a, b)| a * b).sum();
        let norm = normalize(&mut w);
        if norm == 0.0 {
            // v was (numerically) in the null space; restart from a shifted
            // vector rather than reporting a spurious zero.
            v = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 + 1.0).collect();
            normalize(&mut v);
            continue;
        }
        v = w;
        if (sigma_sq - sigma_sq_prev).abs() <= DEFAULT_TOLERANCE * sigma_sq.max(1.0) {
            return sigma_sq.max(0.0).sqrt();
        }
        sigma_sq_prev = sigma_sq;
    }
    sigma_sq_prev.max(0.0).sqrt()
}

/// Distance of `m` to its closest rank-one approximation under the Frobenius
/// norm: `min_{rank(F̂)=1} ‖m − F̂‖_F = sqrt(‖m‖_F² − σ₁²)`.
///
/// A value close to zero means the matrix is (almost) rank one — the signature
/// of uniform and random spammers in the paper's worker model.
pub fn rank_one_distance(m: &Matrix) -> f64 {
    let norm_sq = m.frobenius_norm_sq();
    if norm_sq == 0.0 {
        return 0.0;
    }
    let sigma1 = largest_singular_value(m);
    // Guard against tiny negative values from floating-point cancellation.
    (norm_sq - sigma1 * sigma1).max(0.0).sqrt()
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "expected {b}, got {a}");
    }

    #[test]
    fn singular_value_of_identity_is_one() {
        let m = Matrix::identity(3);
        approx(largest_singular_value(&m), 1.0, 1e-9);
    }

    #[test]
    fn singular_value_of_diagonal_is_max_entry() {
        let m = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 5.0]]);
        approx(largest_singular_value(&m), 5.0, 1e-9);
    }

    #[test]
    fn singular_value_of_zero_matrix_is_zero() {
        let m = Matrix::zeros(3, 3);
        approx(largest_singular_value(&m), 0.0, 1e-12);
        approx(rank_one_distance(&m), 0.0, 1e-12);
    }

    #[test]
    fn singular_value_of_rank_one_matrix_equals_frobenius_norm() {
        // outer product of [1,2] and [3,4]
        let m = Matrix::from_rows(&[vec![3.0, 4.0], vec![6.0, 8.0]]);
        approx(largest_singular_value(&m), m.frobenius_norm(), 1e-9);
        approx(rank_one_distance(&m), 0.0, 1e-6);
    }

    #[test]
    fn rank_one_distance_of_identity() {
        // σ = (1, 1): distance = sqrt(2 - 1) = 1.
        let m = Matrix::identity(2);
        approx(rank_one_distance(&m), 1.0, 1e-9);
    }

    #[test]
    fn random_spammer_confusion_matrix_is_nearly_rank_one() {
        // Both rows are the uniform distribution (paper Table 2, worker A).
        let m = Matrix::from_rows(&[vec![0.5, 0.5], vec![0.5, 0.5]]);
        approx(rank_one_distance(&m), 0.0, 1e-9);
    }

    #[test]
    fn uniform_spammer_confusion_matrix_is_rank_one() {
        // Single non-zero column (paper Table 2, worker A').
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 1.0]]);
        approx(rank_one_distance(&m), 0.0, 1e-9);
    }

    #[test]
    fn reliable_worker_confusion_matrix_is_far_from_rank_one() {
        let m = Matrix::from_rows(&[vec![0.95, 0.05], vec![0.05, 0.95]]);
        assert!(rank_one_distance(&m) > 0.5);
    }

    #[test]
    fn known_singular_value_of_nonsymmetric_matrix() {
        // [[1,1],[0,1]] has σ₁ = golden ratio ≈ 1.618034.
        let m = Matrix::from_rows(&[vec![1.0, 1.0], vec![0.0, 1.0]]);
        approx(largest_singular_value(&m), 1.618_034, 1e-5);
    }

    #[test]
    fn rectangular_matrices_are_supported() {
        let m = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 2.0, 0.0]]);
        approx(largest_singular_value(&m), 2.0, 1e-9);
        approx(rank_one_distance(&m), 1.0, 1e-9);
    }
}
