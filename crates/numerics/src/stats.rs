//! Summary statistics used by the evaluation harness: mean, standard
//! deviation, Pearson correlation (Fig. 15 / Appendix B), and fixed-width
//! histograms (Fig. 6).

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation; `0.0` for slices with fewer than two values.
pub fn population_std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Pearson product-moment correlation coefficient of two paired samples.
///
/// Returns `None` when the samples have different lengths, fewer than two
/// points, or either sample has zero variance (the coefficient is undefined).
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Mean / standard deviation / min / max summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample; an empty sample yields an all-zero summary.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        Self {
            count: values.len(),
            mean: mean(values),
            std_dev: population_std_dev(values),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Fixed-width histogram over `[lo, hi]` with `bins` equally sized buckets.
///
/// Values below `lo` are counted in the first bucket and values above `hi` in
/// the last, matching how the paper's Fig. 6 buckets assignment probabilities
/// into `[0, 0.1), [0.1, 0.2), …, [0.9, 1.0]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        let idx = if value <= self.lo {
            0
        } else if value >= self.hi {
            bins - 1
        } else {
            (((value - self.lo) / width) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin relative frequency in percent (all zeros when empty).
    pub fn frequencies_percent(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| 100.0 * c as f64 / self.total as f64)
            .collect()
    }

    /// Lower edge of bin `i`.
    pub fn bin_lower_edge(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + i as f64 * width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(population_std_dev(&[5.0]), 0.0);
        assert!((population_std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_perfectly_correlated_data_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let r = pearson_correlation(&xs, &ys).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_anticorrelated_data_is_minus_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        let r = pearson_correlation(&xs, &ys).unwrap();
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_undefined_cases_return_none() {
        assert!(pearson_correlation(&[1.0], &[1.0]).is_none());
        assert!(pearson_correlation(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson_correlation(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn histogram_buckets_values_and_clamps_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.extend([0.05, 0.15, 0.95, 1.0, 1.5, -0.2]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 2); // 0.05 and -0.2
        assert_eq!(h.counts()[1], 1); // 0.15
        assert_eq!(h.counts()[9], 3); // 0.95, 1.0 and 1.5
        let freqs = h.frequencies_percent();
        assert!((freqs.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((h.bin_lower_edge(9) - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        Histogram::new(0.0, 1.0, 0);
    }
}
