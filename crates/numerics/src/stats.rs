//! Summary statistics used by the evaluation harness: mean, standard
//! deviation, Pearson correlation (Fig. 15 / Appendix B), and fixed-width
//! histograms (Fig. 6).

use serde::{Deserialize, Serialize};

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation; `0.0` for slices with fewer than two values.
pub fn population_std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// Pearson product-moment correlation coefficient of two paired samples.
///
/// Returns `None` when the samples have different lengths, fewer than two
/// points, or either sample has zero variance (the coefficient is undefined).
pub fn pearson_correlation(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Fleiss' kappa: chance-corrected agreement between raters over a set of
/// subjects, generalized to a variable number of ratings per subject.
///
/// `counts[i][j]` is the number of raters that assigned category `j` to
/// subject `i`. Subjects with fewer than two ratings contribute to the
/// marginal category frequencies but carry no pairwise-agreement evidence.
///
/// Returns `None` when the coefficient is undefined: no subject has two or
/// more ratings, or every rating falls into a single category (expected
/// agreement is 1 and the denominator vanishes).
pub fn fleiss_kappa(counts: &[Vec<u64>]) -> Option<f64> {
    let categories = counts.iter().map(Vec::len).max().unwrap_or(0);
    if categories == 0 {
        return None;
    }
    let mut marginal = vec![0u64; categories];
    let mut total_ratings = 0u64;
    let mut p_subjects = 0.0;
    let mut rated_subjects = 0u64;
    for subject in counts {
        let n: u64 = subject.iter().sum();
        for (j, &c) in subject.iter().enumerate() {
            marginal[j] += c;
        }
        total_ratings += n;
        if n >= 2 {
            // Fraction of agreeing rater pairs on this subject.
            let pairs: u64 = subject.iter().map(|&c| c * c.saturating_sub(1)).sum();
            p_subjects += pairs as f64 / (n * (n - 1)) as f64;
            rated_subjects += 1;
        }
    }
    if rated_subjects == 0 {
        return None;
    }
    let p_observed = p_subjects / rated_subjects as f64;
    let p_expected: f64 = marginal
        .iter()
        .map(|&c| {
            let share = c as f64 / total_ratings as f64;
            share * share
        })
        .sum();
    if (1.0 - p_expected).abs() < 1e-12 {
        return None;
    }
    Some((p_observed - p_expected) / (1.0 - p_expected))
}

/// Mean / standard deviation / min / max summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample; an empty sample yields an all-zero summary.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        Self {
            count: values.len(),
            mean: mean(values),
            std_dev: population_std_dev(values),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }
}

/// Fixed-width histogram over `[lo, hi]` with `bins` equally sized buckets.
///
/// Values below `lo` are counted in the first bucket and values above `hi` in
/// the last, matching how the paper's Fig. 6 buckets assignment probabilities
/// into `[0, 0.1), [0.1, 0.2), …, [0.9, 1.0]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Adds one observation.
    pub fn add(&mut self, value: f64) {
        let bins = self.counts.len();
        let width = (self.hi - self.lo) / bins as f64;
        let idx = if value <= self.lo {
            0
        } else if value >= self.hi {
            bins - 1
        } else {
            (((value - self.lo) / width) as usize).min(bins - 1)
        };
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Raw counts per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin relative frequency in percent (all zeros when empty).
    pub fn frequencies_percent(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| 100.0 * c as f64 / self.total as f64)
            .collect()
    }

    /// Lower edge of bin `i`.
    pub fn bin_lower_edge(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + i as f64 * width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(population_std_dev(&[5.0]), 0.0);
        assert!((population_std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_perfectly_correlated_data_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let r = pearson_correlation(&xs, &ys).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_anticorrelated_data_is_minus_one() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        let r = pearson_correlation(&xs, &ys).unwrap();
        assert!((r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_undefined_cases_return_none() {
        assert!(pearson_correlation(&[1.0], &[1.0]).is_none());
        assert!(pearson_correlation(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson_correlation(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn fleiss_kappa_of_perfect_agreement_is_one() {
        // Three subjects, every rater picks the same category per subject but
        // the categories differ across subjects (keeps expected < 1).
        let counts = vec![vec![4, 0], vec![0, 4], vec![4, 0]];
        let k = fleiss_kappa(&counts).unwrap();
        assert!((k - 1.0).abs() < 1e-12, "kappa {k}");
    }

    #[test]
    fn fleiss_kappa_of_split_votes_is_low() {
        // Every subject splits 2/2: observed agreement is 1/3, expected 1/2.
        let counts = vec![vec![2, 2], vec![2, 2], vec![2, 2]];
        let k = fleiss_kappa(&counts).unwrap();
        assert!(
            k < 0.0,
            "kappa {k} should be negative for worse-than-chance"
        );
    }

    #[test]
    fn fleiss_kappa_undefined_cases_return_none() {
        // No subjects at all.
        assert!(fleiss_kappa(&[]).is_none());
        // No subject with two or more ratings.
        assert!(fleiss_kappa(&[vec![1, 0], vec![0, 1]]).is_none());
        // All ratings in one category: expected agreement is 1.
        assert!(fleiss_kappa(&[vec![3, 0], vec![4, 0]]).is_none());
    }

    #[test]
    fn fleiss_kappa_skips_singleton_subjects_but_counts_their_marginals() {
        let with_singleton = vec![vec![3, 0], vec![0, 3], vec![0, 1]];
        let without = vec![vec![3, 0], vec![0, 3]];
        let a = fleiss_kappa(&with_singleton).unwrap();
        let b = fleiss_kappa(&without).unwrap();
        // The singleton shifts the marginals, so the values differ, but both
        // stay in the valid range and report strong agreement.
        assert!(a > 0.9 && b > 0.9, "kappa {a} / {b}");
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn histogram_buckets_values_and_clamps_outliers() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.extend([0.05, 0.15, 0.95, 1.0, 1.5, -0.2]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 2); // 0.05 and -0.2
        assert_eq!(h.counts()[1], 1); // 0.15
        assert_eq!(h.counts()[9], 3); // 0.95, 1.0 and 1.5
        let freqs = h.frequencies_percent();
        assert!((freqs.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((h.bin_lower_edge(9) - 0.9).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        Histogram::new(0.0, 1.0, 0);
    }
}
