//! Property-based tests of the numerical substrate.

use crowdval_numerics::{
    largest_singular_value, pearson_correlation, rank_one_distance, shannon_entropy,
    shannon_entropy_normalized, Histogram, Matrix,
};
use proptest::prelude::*;

fn arb_distribution(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..1.0, 1..=max_len).prop_map(|raw| {
        let sum: f64 = raw.iter().sum();
        raw.into_iter().map(|v| v / sum).collect()
    })
}

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1usize..=max_dim, 1usize..=max_dim).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(-5.0f64..5.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(rows, cols, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Entropy of a probability distribution lies in [0, ln m] and the
    /// normalized entropy in [0, 1].
    #[test]
    fn entropy_bounds(dist in arb_distribution(8)) {
        let h = shannon_entropy(&dist);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (dist.len() as f64).ln() + 1e-9);
        let hn = shannon_entropy_normalized(&dist);
        prop_assert!((-1e-12..=1.0 + 1e-9).contains(&hn));
    }

    /// The largest singular value is bounded by the Frobenius norm and the
    /// rank-one distance satisfies the Pythagorean relation
    /// `σ₁² + d² = ‖A‖_F²` (up to numerical error).
    #[test]
    fn singular_value_and_rank_one_distance_are_consistent(m in arb_matrix(5)) {
        let sigma1 = largest_singular_value(&m);
        let d = rank_one_distance(&m);
        let norm = m.frobenius_norm();
        prop_assert!(sigma1 >= -1e-9);
        prop_assert!(sigma1 <= norm + 1e-6);
        prop_assert!(d >= -1e-9);
        prop_assert!(d <= norm + 1e-6);
        prop_assert!((sigma1 * sigma1 + d * d - norm * norm).abs() <= 1e-5 * (1.0 + norm * norm));
    }

    /// Row normalization always produces a row-stochastic matrix.
    #[test]
    fn normalize_rows_yields_distributions(m in arb_matrix(5)) {
        let mut m = m;
        // Make entries non-negative first (normalization of mixed-sign rows is
        // not meaningful for probability semantics).
        let mut positive = Matrix::zeros(m.rows(), m.cols());
        for (r, c, v) in m.iter() {
            positive[(r, c)] = v.abs();
        }
        m = positive;
        m.normalize_rows();
        prop_assert!(m.is_row_stochastic(1e-9));
    }

    /// The Pearson correlation coefficient is always within [-1, 1] when it
    /// exists.
    #[test]
    fn pearson_is_bounded(
        xs in proptest::collection::vec(-100.0f64..100.0, 2..30),
        noise in proptest::collection::vec(-100.0f64..100.0, 2..30)
    ) {
        let len = xs.len().min(noise.len());
        if let Some(r) = pearson_correlation(&xs[..len], &noise[..len]) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    /// Histograms never lose observations and their percentages sum to 100.
    #[test]
    fn histograms_conserve_mass(values in proptest::collection::vec(-0.5f64..1.5, 1..200)) {
        let mut h = Histogram::new(0.0, 1.0, 10);
        h.extend(values.iter().copied());
        prop_assert_eq!(h.total() as usize, values.len());
        let sum: f64 = h.frequencies_percent().iter().sum();
        prop_assert!((sum - 100.0).abs() < 1e-6);
    }
}
