//! Strongly typed indices for objects, workers and labels.
//!
//! All three are dense zero-based indices into the corresponding dimension of
//! an [`crate::AnswerSet`]. Newtypes keep the three spaces from being mixed up
//! at compile time while staying `Copy` and free to convert to `usize` for
//! indexing.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// The underlying dense index.
            #[inline]
            pub fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            fn from(value: usize) -> Self {
                Self(value)
            }
        }

        impl From<$name> for usize {
            fn from(value: $name) -> usize {
                value.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Index of an object (a question / task item) in an answer set.
    ObjectId,
    "o"
);
define_id!(
    /// Index of a crowd worker in an answer set.
    WorkerId,
    "w"
);
define_id!(
    /// Index of a label (a possible answer value) in an answer set.
    LabelId,
    "l"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_convert_to_and_from_usize() {
        let o: ObjectId = 3.into();
        assert_eq!(o.index(), 3);
        assert_eq!(usize::from(o), 3);
        let w = WorkerId(7);
        assert_eq!(w.index(), 7);
        let l = LabelId::from(1);
        assert_eq!(l, LabelId(1));
    }

    #[test]
    fn ids_display_with_prefix() {
        assert_eq!(ObjectId(2).to_string(), "o2");
        assert_eq!(WorkerId(5).to_string(), "w5");
        assert_eq!(LabelId(0).to_string(), "l0");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ObjectId(1) < ObjectId(2));
        assert!(LabelId(3) > LabelId(0));
    }
}
