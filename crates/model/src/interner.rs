//! External-id interning: stable client-facing string ids mapped to the
//! dense internal indices the aggregation kernels run on.
//!
//! Everything inside the engine speaks [`crate::ObjectId`] /
//! [`crate::WorkerId`] / [`crate::LabelId`] — dense zero-based indices whose
//! *assignment order* depends on arrival order (streaming sessions grow the
//! id spaces as votes land). That ordering is an implementation detail a
//! service client must never see: the public contract of the validation
//! service is phrased entirely in stable string ids ("worker `alice`",
//! "object `img-0093`"), and an [`IdInterner`] per id space performs the
//! translation at the boundary.
//!
//! The interner is deliberately append-only: dense indices are handed out in
//! first-seen order and never reused or reshuffled, so `intern` is stable
//! across the lifetime of a task and the mapping round-trips losslessly
//! through serde (serialization keeps the assignment order, which is what
//! makes session snapshots resume bit-identically — the restored task
//! re-associates every external id with the same dense index).

use crate::error::ModelError;
use serde::{Deserialize, Serialize, Value};
use std::collections::HashMap;

/// Bidirectional map between external string ids and dense `usize` indices,
/// assigning indices in first-seen order.
#[derive(Debug, Clone, Default)]
pub struct IdInterner {
    names: Vec<String>,
    index: HashMap<String, usize>,
}

impl IdInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an interner from a fixed name list (index = position). Fails
    /// on duplicates — a fixed namespace such as a task's label set must be
    /// unambiguous.
    pub fn from_names<S: Into<String>>(names: Vec<S>) -> Result<Self, ModelError> {
        let mut interner = Self::new();
        for name in names {
            let name = name.into();
            if interner.index.contains_key(&name) {
                return Err(ModelError::DuplicateId { id: name });
            }
            interner.intern(&name);
        }
        Ok(interner)
    }

    /// Number of interned ids.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Reserves capacity for `additional` more ids (ingest-batch hint, so a
    /// large vote batch does not pay incremental map growth mid-loop).
    pub fn reserve(&mut self, additional: usize) {
        self.names.reserve(additional);
        self.index.reserve(additional);
    }

    /// The dense index of `name`, registering it (next free index) when
    /// unseen. First-seen order determines the index; re-interning is a
    /// lookup.
    pub fn intern(&mut self, name: &str) -> usize {
        if let Some(&idx) = self.index.get(name) {
            return idx;
        }
        let idx = self.names.len();
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), idx);
        idx
    }

    /// The dense index of `name`, if it has been interned.
    pub fn get(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// The external name assigned to a dense index.
    pub fn name(&self, index: usize) -> Option<&str> {
        self.names.get(index).map(String::as_str)
    }

    /// All names in index order (position = dense index).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Iterator over `(index, name)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str)> {
        self.names.iter().enumerate().map(|(i, n)| (i, n.as_str()))
    }
}

impl PartialEq for IdInterner {
    /// Two interners are equal when they assign the same indices to the same
    /// names (the lookup map is derived state).
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
    }
}

impl Eq for IdInterner {}

impl Serialize for IdInterner {
    fn to_value(&self) -> Value {
        Value::Array(self.names.iter().map(|n| Value::Str(n.clone())).collect())
    }
}

impl Deserialize for IdInterner {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let items = value
            .as_array()
            .ok_or_else(|| serde::Error::custom("expected interner name array"))?;
        let mut names = Vec::with_capacity(items.len());
        for item in items {
            names.push(
                item.as_str()
                    .ok_or_else(|| serde::Error::custom("interner names must be strings"))?
                    .to_string(),
            );
        }
        IdInterner::from_names(names).map_err(|e| serde::Error::custom(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_assigns_indices_in_first_seen_order() {
        let mut i = IdInterner::new();
        assert_eq!(i.intern("alice"), 0);
        assert_eq!(i.intern("bob"), 1);
        assert_eq!(i.intern("alice"), 0);
        assert_eq!(i.len(), 2);
        assert_eq!(i.get("bob"), Some(1));
        assert_eq!(i.get("carol"), None);
        assert_eq!(i.name(0), Some("alice"));
        assert_eq!(i.name(5), None);
    }

    #[test]
    fn from_names_rejects_duplicates() {
        assert!(IdInterner::from_names(vec!["yes", "no"]).is_ok());
        assert!(matches!(
            IdInterner::from_names(vec!["yes", "yes"]),
            Err(ModelError::DuplicateId { .. })
        ));
    }

    #[test]
    fn serde_round_trip_preserves_assignment_order() {
        let mut i = IdInterner::new();
        i.intern("w-9");
        i.intern("w-2");
        i.intern("w-5");
        let restored = IdInterner::from_value(&i.to_value()).unwrap();
        assert_eq!(i, restored);
        assert_eq!(restored.get("w-2"), Some(1));
        assert_eq!(
            restored.iter().collect::<Vec<_>>(),
            vec![(0, "w-9"), (1, "w-2"), (2, "w-5")]
        );
    }
}
