//! The expert answer-validation function `e : O → L ∪ {⊥}` (paper §3.1).

use crate::ids::{LabelId, ObjectId};
use serde::{Deserialize, Serialize};

/// Partial map from objects to the label asserted by the validating expert.
/// Objects the expert has not looked at yet map to `None` (the paper's `⊥`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExpertValidation {
    labels: Vec<Option<LabelId>>,
}

impl ExpertValidation {
    /// Creates an empty validation function over `num_objects` objects.
    pub fn empty(num_objects: usize) -> Self {
        Self {
            labels: vec![None; num_objects],
        }
    }

    /// Number of objects covered by the function's domain.
    pub fn num_objects(&self) -> usize {
        self.labels.len()
    }

    /// Grows the function's domain to at least `num_objects` objects (new
    /// objects start unvalidated). Streaming ingestion calls this when votes
    /// for previously unseen objects arrive; shrinking is not supported.
    pub fn ensure_domain(&mut self, num_objects: usize) {
        if num_objects > self.labels.len() {
            self.labels.resize(num_objects, None);
        }
    }

    /// The expert's label for `object`, if any.
    pub fn get(&self, object: ObjectId) -> Option<LabelId> {
        self.labels[object.index()]
    }

    /// True when the expert has validated `object`.
    pub fn is_validated(&self, object: ObjectId) -> bool {
        self.labels[object.index()].is_some()
    }

    /// Records (or overwrites) the expert's label for `object`.
    pub fn set(&mut self, object: ObjectId, label: LabelId) {
        self.labels[object.index()] = Some(label);
    }

    /// Withdraws the expert's label for `object` (used by the confirmation
    /// check when a validation is identified as erroneous, §5.5).
    pub fn clear(&mut self, object: ObjectId) -> Option<LabelId> {
        self.labels[object.index()].take()
    }

    /// Number of validated objects.
    pub fn count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// Fraction of validated objects (`f_i` in the hybrid weighting, §5.4).
    pub fn coverage(&self) -> f64 {
        if self.labels.is_empty() {
            0.0
        } else {
            self.count() as f64 / self.labels.len() as f64
        }
    }

    /// Objects that have been validated, in id order.
    pub fn validated_objects(&self) -> Vec<ObjectId> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(o, l)| l.map(|_| ObjectId(o)))
            .collect()
    }

    /// Objects that still lack expert input, in id order — the candidate set
    /// of every guidance strategy.
    pub fn unvalidated_objects(&self) -> Vec<ObjectId> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(o, l)| if l.is_none() { Some(ObjectId(o)) } else { None })
            .collect()
    }

    /// Iterator over `(object, label)` pairs for validated objects.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, LabelId)> + '_ {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(o, l)| l.map(|label| (ObjectId(o), label)))
    }

    /// Returns a copy of this function with the validation for `object`
    /// removed — the leave-one-out view used by the confirmation check (§5.5).
    pub fn without(&self, object: ObjectId) -> ExpertValidation {
        let mut out = self.clone();
        out.clear(object);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let e = ExpertValidation::empty(3);
        assert_eq!(e.count(), 0);
        assert_eq!(e.coverage(), 0.0);
        assert!(!e.is_validated(ObjectId(0)));
        assert_eq!(e.unvalidated_objects().len(), 3);
        assert!(e.validated_objects().is_empty());
    }

    #[test]
    fn set_get_and_clear() {
        let mut e = ExpertValidation::empty(3);
        e.set(ObjectId(1), LabelId(0));
        assert_eq!(e.get(ObjectId(1)), Some(LabelId(0)));
        assert!(e.is_validated(ObjectId(1)));
        assert_eq!(e.count(), 1);
        assert!((e.coverage() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(e.clear(ObjectId(1)), Some(LabelId(0)));
        assert_eq!(e.count(), 0);
    }

    #[test]
    fn validated_and_unvalidated_partition_objects() {
        let mut e = ExpertValidation::empty(4);
        e.set(ObjectId(0), LabelId(1));
        e.set(ObjectId(3), LabelId(0));
        assert_eq!(e.validated_objects(), vec![ObjectId(0), ObjectId(3)]);
        assert_eq!(e.unvalidated_objects(), vec![ObjectId(1), ObjectId(2)]);
        assert_eq!(e.iter().count(), 2);
    }

    #[test]
    fn without_is_leave_one_out() {
        let mut e = ExpertValidation::empty(2);
        e.set(ObjectId(0), LabelId(1));
        e.set(ObjectId(1), LabelId(0));
        let loo = e.without(ObjectId(0));
        assert!(!loo.is_validated(ObjectId(0)));
        assert!(loo.is_validated(ObjectId(1)));
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn coverage_of_empty_domain_is_zero() {
        assert_eq!(ExpertValidation::empty(0).coverage(), 0.0);
    }
}
