//! Borrowed validation views for hypothesis evaluation (paper §5.2, §5.4).
//!
//! The guidance hot path asks, for every `(candidate, plausible label)` pair,
//! *"what would the aggregation conclude if the expert validated this
//! object?"*. Materializing that question as an [`ExpertValidation`] clone
//! per hypothesis costs an `O(objects)` allocation before a single EM
//! iteration has run. A [`HypothesisOverlay`] instead borrows the real
//! validation function and overlays exactly one pinned `(object, label)`
//! pair, so the `O(candidates × labels)` fan-out of a validation step
//! allocates nothing per hypothesis.
//!
//! The aggregation algorithms are generic over [`ValidationView`], the
//! read-only interface shared by [`ExpertValidation`] and
//! [`HypothesisOverlay`].

use crate::expert::ExpertValidation;
use crate::ids::{LabelId, ObjectId};

/// Read-only view of a validation function `e : O → L ∪ {⊥}` — everything the
/// EM estimators need to clamp validated objects and anchor label
/// orientations.
pub trait ValidationView: Sync {
    /// The expert's (possibly hypothetical) label for `object`, if any.
    fn validated(&self, object: ObjectId) -> Option<LabelId>;

    /// Number of objects in the view's domain.
    fn domain_len(&self) -> usize;

    /// Number of validated objects, pinned hypotheses included.
    fn validated_count(&self) -> usize;

    /// `(object, label)` pairs of every validated object, in object order.
    /// Allocates; callers on the EM hot loop should use [`Self::validated`]
    /// instead (this is only needed by the once-per-run label-switching
    /// anchor check).
    fn validated_pairs(&self) -> Vec<(ObjectId, LabelId)>;
}

impl ValidationView for ExpertValidation {
    fn validated(&self, object: ObjectId) -> Option<LabelId> {
        self.get(object)
    }

    fn domain_len(&self) -> usize {
        self.num_objects()
    }

    fn validated_count(&self) -> usize {
        self.count()
    }

    fn validated_pairs(&self) -> Vec<(ObjectId, LabelId)> {
        self.iter().collect()
    }
}

/// A borrowed [`ExpertValidation`] with one additional hypothetical
/// validation pinned on top — the zero-allocation substitute for
/// `expert.clone(); clone.set(object, label)` in the hypothesis fan-out.
///
/// The pinned pair shadows the base: if the base already validates the
/// pinned object, the overlay reports the pinned label.
#[derive(Debug, Clone, Copy)]
pub struct HypothesisOverlay<'a> {
    base: &'a ExpertValidation,
    object: ObjectId,
    label: LabelId,
}

impl<'a> HypothesisOverlay<'a> {
    /// Overlays the hypothesis `e(object) = label` on `base`.
    pub fn new(base: &'a ExpertValidation, object: ObjectId, label: LabelId) -> Self {
        Self {
            base,
            object,
            label,
        }
    }

    /// The underlying validation function.
    pub fn base(&self) -> &'a ExpertValidation {
        self.base
    }

    /// The pinned object.
    pub fn object(&self) -> ObjectId {
        self.object
    }

    /// The pinned label.
    pub fn label(&self) -> LabelId {
        self.label
    }

    /// Materializes the overlay as an owned [`ExpertValidation`] — the slow
    /// path used by aggregators without a native overlay implementation.
    pub fn materialize(&self) -> ExpertValidation {
        let mut out = self.base.clone();
        out.set(self.object, self.label);
        out
    }
}

impl ValidationView for HypothesisOverlay<'_> {
    fn validated(&self, object: ObjectId) -> Option<LabelId> {
        if object == self.object {
            Some(self.label)
        } else {
            self.base.get(object)
        }
    }

    fn domain_len(&self) -> usize {
        self.base.num_objects()
    }

    fn validated_count(&self) -> usize {
        if self.base.is_validated(self.object) {
            self.base.count()
        } else {
            self.base.count() + 1
        }
    }

    fn validated_pairs(&self) -> Vec<(ObjectId, LabelId)> {
        let mut pairs: Vec<(ObjectId, LabelId)> = self.base.iter().collect();
        match pairs.binary_search_by_key(&self.object, |&(o, _)| o) {
            Ok(pos) => pairs[pos].1 = self.label,
            Err(pos) => pairs.insert(pos, (self.object, self.label)),
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_shadows_the_base() {
        let mut base = ExpertValidation::empty(4);
        base.set(ObjectId(0), LabelId(1));
        base.set(ObjectId(2), LabelId(0));
        let overlay = HypothesisOverlay::new(&base, ObjectId(1), LabelId(0));
        assert_eq!(overlay.validated(ObjectId(0)), Some(LabelId(1)));
        assert_eq!(overlay.validated(ObjectId(1)), Some(LabelId(0)));
        assert_eq!(overlay.validated(ObjectId(3)), None);
        assert_eq!(overlay.validated_count(), 3);
        assert_eq!(overlay.domain_len(), 4);
        assert_eq!(
            overlay.validated_pairs(),
            vec![
                (ObjectId(0), LabelId(1)),
                (ObjectId(1), LabelId(0)),
                (ObjectId(2), LabelId(0)),
            ]
        );
    }

    #[test]
    fn overlay_overrides_an_existing_validation() {
        let mut base = ExpertValidation::empty(3);
        base.set(ObjectId(1), LabelId(0));
        let overlay = HypothesisOverlay::new(&base, ObjectId(1), LabelId(1));
        assert_eq!(overlay.validated(ObjectId(1)), Some(LabelId(1)));
        assert_eq!(overlay.validated_count(), 1);
        assert_eq!(overlay.validated_pairs(), vec![(ObjectId(1), LabelId(1))]);
        // The base is untouched.
        assert_eq!(base.get(ObjectId(1)), Some(LabelId(0)));
    }

    #[test]
    fn materialize_matches_clone_and_set() {
        let mut base = ExpertValidation::empty(3);
        base.set(ObjectId(0), LabelId(1));
        let overlay = HypothesisOverlay::new(&base, ObjectId(2), LabelId(0));
        let owned = overlay.materialize();
        let mut expected = base.clone();
        expected.set(ObjectId(2), LabelId(0));
        assert_eq!(owned, expected);
    }

    #[test]
    fn expert_validation_view_agrees_with_its_accessors() {
        let mut e = ExpertValidation::empty(3);
        e.set(ObjectId(2), LabelId(1));
        assert_eq!(ValidationView::validated(&e, ObjectId(2)), Some(LabelId(1)));
        assert_eq!(e.domain_len(), 3);
        assert_eq!(ValidationView::validated_count(&e), 1);
        assert_eq!(e.validated_pairs(), vec![(ObjectId(2), LabelId(1))]);
    }
}
