//! Data model for crowdsourced classification tasks (paper §3.1).
//!
//! An *answer set* `N = ⟨O, W, L, M⟩` consists of objects `O`, workers `W`,
//! labels `L` and a (sparse) answer matrix `M`. A *probabilistic answer set*
//! `P = ⟨N, e, U, C⟩` additionally carries the expert validation function `e`,
//! a probabilistic assignment matrix `U` and one confusion matrix per worker.
//! The crowdsourcing result is a *deterministic assignment* `d : O → L`.
//!
//! This crate defines those types plus ground truth, datasets (answer set +
//! ground truth + metadata) and a plain-text CSV interchange format, so that
//! the aggregation, guidance and simulation crates can share a vocabulary.

pub mod answer_matrix;
pub mod answer_set;
pub mod assignment;
pub mod confusion;
mod csr;
pub mod dataset;
pub mod error;
pub mod expert;
pub mod ground_truth;
pub mod ids;
pub mod interner;
pub mod io;
pub mod overlay;
pub mod probabilistic;
pub mod vote;

pub use answer_matrix::{AnswerMatrix, MatrixMemoryFootprint, ObjectVotes, VoteTally, WorkerVotes};
pub use answer_set::AnswerSet;
pub use assignment::{AssignmentMatrix, DeterministicAssignment};
pub use confusion::ConfusionMatrix;
pub use dataset::{Dataset, DatasetStats};
pub use error::ModelError;
pub use expert::ExpertValidation;
pub use ground_truth::GroundTruth;
pub use ids::{LabelId, ObjectId, WorkerId};
pub use interner::IdInterner;
pub use overlay::{HypothesisOverlay, ValidationView};
pub use probabilistic::ProbabilisticAnswerSet;
pub use vote::Vote;
