//! Sparse answer matrix `M` (paper §3.1).
//!
//! Each cell `M(o, w)` holds the label worker `w` gave to object `o`, or is
//! empty (the paper's `⊥`) when the worker skipped the object. Because workers
//! only answer a limited number of questions the matrix is sparse (§5.4), so
//! we keep two adjacency views — per object and per worker — instead of a
//! dense `n × k` grid.
//!
//! ## Storage: paged arenas
//!
//! Both adjacency views are stored in a *paged arena*: every row is a chain
//! of fixed-size chunks carved out of one contiguous slab (a plain `Vec` of
//! chunks, so appending amortizes like a vector while rows never move each
//! other around). Compared to the previous `Vec<Vec<(id, label)>>` layout
//! this removes the per-row heap allocation (one allocation per *slab
//! doubling* instead of one per object/worker) and keeps each row's entries
//! in cache-line-sized blocks, which is what the EM inner loops stream over
//! on every iteration. Appending a vote is `O(row length)` worst case (the
//! overwrite check scans the row) and `O(1)` amortized for fresh `(o, w)`
//! pairs.
//!
//! Row entries are kept in **insertion order** (streaming arrival order), not
//! sorted by id; every accessor returns a deterministic iterator over that
//! order.
//!
//! ## Worker tombstones
//!
//! Excluding a suspected faulty worker (§5.3) no longer copies the matrix
//! minus that worker's answers. Instead the matrix carries a per-worker
//! *tombstone mask* consulted by iteration: [`AnswerMatrix::set_worker_excluded`]
//! flips a bit, and [`AnswerMatrix::answers_for_object`],
//! [`AnswerMatrix::answers_for_worker`], [`AnswerMatrix::iter`],
//! [`AnswerMatrix::answer`] and the answer counts all behave as if the
//! excluded workers' votes were gone. Exclusion and re-inclusion are `O(1)`
//! plus a row-length count update — no `O(answers)` copy per excluded worker.

use crate::csr::CompactAdjacency;
use crate::error::ModelError;
use crate::ids::{LabelId, ObjectId, WorkerId};
use serde::{Deserialize, Serialize, Value};

/// Entries per chunk. Eight `(u32, u32)` pairs keep a chunk at 64 payload
/// bytes — one cache line — plus the chain metadata.
const CHUNK_CAP: usize = 8;

/// Sentinel chunk index for "no chunk".
const NONE_CHUNK: u32 = u32::MAX;

/// One fixed-size page of a row chain.
#[derive(Debug, Clone)]
struct Chunk {
    pairs: [(u32, u32); CHUNK_CAP],
    len: u32,
    next: u32,
}

impl Chunk {
    fn empty() -> Self {
        Self {
            pairs: [(0, 0); CHUNK_CAP],
            len: 0,
            next: NONE_CHUNK,
        }
    }
}

/// A row's chain handle inside the arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RowRef {
    head: u32,
    tail: u32,
    len: u32,
}

impl RowRef {
    const EMPTY: RowRef = RowRef {
        head: NONE_CHUNK,
        tail: NONE_CHUNK,
        len: 0,
    };
}

/// Paged adjacency lists: rows of `(id, label)` pairs chained through a
/// shared chunk slab. Appends amortize through the slab `Vec`; chunks freed
/// by removals are recycled through a free list.
#[derive(Debug, Clone, Default)]
pub(crate) struct PagedAdjacency {
    rows: Vec<RowRef>,
    chunks: Vec<Chunk>,
    free: Vec<u32>,
}

impl PagedAdjacency {
    pub(crate) fn with_rows(rows: usize) -> Self {
        Self {
            rows: vec![RowRef::EMPTY; rows],
            chunks: Vec::new(),
            free: Vec::new(),
        }
    }

    pub(crate) fn num_rows(&self) -> usize {
        self.rows.len()
    }

    fn ensure_rows(&mut self, rows: usize) {
        if rows > self.rows.len() {
            self.rows.resize(rows, RowRef::EMPTY);
        }
    }

    pub(crate) fn row_len(&self, row: usize) -> usize {
        self.rows.get(row).map_or(0, |r| r.len as usize)
    }

    /// Reserves slab capacity for roughly `additional` more pairs. A hint:
    /// worst-case chunk fragmentation can still allocate past it, but batch
    /// ingestion stops paying per-doubling `Vec` growth mid-loop.
    fn reserve_pairs(&mut self, additional: usize) {
        let chunks = additional.div_ceil(CHUNK_CAP);
        self.chunks.reserve(chunks.saturating_sub(self.free.len()));
    }

    /// Heap bytes held by the arena (capacities, not lengths).
    fn heap_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<RowRef>()
            + self.chunks.capacity() * std::mem::size_of::<Chunk>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    fn alloc_chunk(&mut self) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.chunks[idx as usize] = Chunk::empty();
            idx
        } else {
            self.chunks.push(Chunk::empty());
            (self.chunks.len() - 1) as u32
        }
    }

    /// Appends a pair to a row (no duplicate check).
    fn push(&mut self, row: usize, id: u32, label: u32) {
        let needs_chunk = {
            let r = &self.rows[row];
            r.head == NONE_CHUNK || self.chunks[r.tail as usize].len as usize == CHUNK_CAP
        };
        if needs_chunk {
            let idx = self.alloc_chunk();
            let r = &mut self.rows[row];
            if r.head == NONE_CHUNK {
                r.head = idx;
            } else {
                let old_tail = r.tail;
                self.chunks[old_tail as usize].next = idx;
            }
            self.rows[row].tail = idx;
        }
        let tail = self.rows[row].tail as usize;
        let chunk = &mut self.chunks[tail];
        chunk.pairs[chunk.len as usize] = (id, label);
        chunk.len += 1;
        self.rows[row].len += 1;
    }

    /// Locates a pair by id: `(chunk index, position)`.
    fn find(&self, row: usize, id: u32) -> Option<(u32, u32)> {
        let mut chunk = self.rows.get(row)?.head;
        while chunk != NONE_CHUNK {
            let c = &self.chunks[chunk as usize];
            for pos in 0..c.len {
                if c.pairs[pos as usize].0 == id {
                    return Some((chunk, pos));
                }
            }
            chunk = c.next;
        }
        None
    }

    fn get(&self, row: usize, id: u32) -> Option<u32> {
        self.find(row, id)
            .map(|(chunk, pos)| self.chunks[chunk as usize].pairs[pos as usize].1)
    }

    /// Inserts or overwrites a pair; returns `true` when the pair is new.
    pub(crate) fn set(&mut self, row: usize, id: u32, label: u32) -> bool {
        if let Some((chunk, pos)) = self.find(row, id) {
            self.chunks[chunk as usize].pairs[pos as usize].1 = label;
            false
        } else {
            self.push(row, id, label);
            true
        }
    }

    /// Removes a pair by id (swap-remove with the row's last entry, so the
    /// relative order of the remaining entries may change). Emptied tail
    /// chunks are unlinked and recycled.
    pub(crate) fn remove(&mut self, row: usize, id: u32) -> Option<u32> {
        let (chunk, pos) = self.find(row, id)?;
        let label = self.chunks[chunk as usize].pairs[pos as usize].1;
        let tail = self.rows[row].tail;
        let last = self.chunks[tail as usize].len - 1;
        self.chunks[chunk as usize].pairs[pos as usize] =
            self.chunks[tail as usize].pairs[last as usize];
        self.chunks[tail as usize].len -= 1;
        self.rows[row].len -= 1;
        if self.chunks[tail as usize].len == 0 {
            if self.rows[row].head == tail {
                self.rows[row] = RowRef::EMPTY;
            } else {
                // Walk the (short) chain to unlink the emptied tail.
                let mut pred = self.rows[row].head;
                while self.chunks[pred as usize].next != tail {
                    pred = self.chunks[pred as usize].next;
                }
                self.chunks[pred as usize].next = NONE_CHUNK;
                self.rows[row].tail = pred;
            }
            self.free.push(tail);
        }
        Some(label)
    }

    pub(crate) fn row_pairs(&self, row: usize) -> PairIter<'_> {
        PairIter {
            chunks: &self.chunks,
            chunk: self.rows.get(row).map_or(NONE_CHUNK, |r| r.head),
            pos: 0,
        }
    }

    fn rows_equal(&self, other: &Self, row: usize) -> bool {
        self.row_len(row) == other.row_len(row) && self.row_pairs(row).eq(other.row_pairs(row))
    }
}

/// Chain-walking iterator over a row's raw `(id, label)` pairs.
#[derive(Debug, Clone)]
pub(crate) struct PairIter<'a> {
    chunks: &'a [Chunk],
    chunk: u32,
    pos: u32,
}

impl Iterator for PairIter<'_> {
    type Item = (u32, u32);

    #[inline]
    fn next(&mut self) -> Option<(u32, u32)> {
        loop {
            if self.chunk == NONE_CHUNK {
                return None;
            }
            let c = &self.chunks[self.chunk as usize];
            if self.pos < c.len {
                let pair = c.pairs[self.pos as usize];
                self.pos += 1;
                return Some(pair);
            }
            self.chunk = c.next;
            self.pos = 0;
        }
    }
}

/// A row's raw `(id, label)` pairs, streamed either from the flat compact
/// mirror (when the row is clean) or from the paged chunk chain. Both
/// variants yield the exact same pairs in the exact same (arrival) order —
/// the compact mirror is rewritten *from* the chain — so downstream float
/// work is bitwise independent of which variant serves the row.
#[derive(Debug, Clone)]
enum RowPairs<'a> {
    Flat(std::slice::Iter<'a, (u32, u32)>),
    Chain(PairIter<'a>),
}

impl RowPairs<'_> {
    fn empty() -> RowPairs<'static> {
        RowPairs::Flat([].iter())
    }
}

impl Iterator for RowPairs<'_> {
    type Item = (u32, u32);

    #[inline]
    fn next(&mut self) -> Option<(u32, u32)> {
        match self {
            RowPairs::Flat(iter) => iter.next().copied(),
            RowPairs::Chain(iter) => iter.next(),
        }
    }
}

/// Iterator over the `(worker, label)` votes of one object, in arrival
/// order, with tombstoned workers filtered out.
#[derive(Debug, Clone)]
pub struct ObjectVotes<'a> {
    pairs: RowPairs<'a>,
    excluded: &'a [bool],
}

impl Iterator for ObjectVotes<'_> {
    type Item = (WorkerId, LabelId);

    #[inline]
    fn next(&mut self) -> Option<(WorkerId, LabelId)> {
        for (id, label) in self.pairs.by_ref() {
            if !self.excluded[id as usize] {
                return Some((WorkerId(id as usize), LabelId(label as usize)));
            }
        }
        None
    }
}

/// Iterator over the `(object, label)` votes of one worker, in arrival
/// order. Empty when the worker is tombstoned.
#[derive(Debug, Clone)]
pub struct WorkerVotes<'a> {
    pairs: RowPairs<'a>,
}

impl Iterator for WorkerVotes<'_> {
    type Item = (ObjectId, LabelId);

    #[inline]
    fn next(&mut self) -> Option<(ObjectId, LabelId)> {
        self.pairs
            .next()
            .map(|(id, label)| (ObjectId(id as usize), LabelId(label as usize)))
    }
}

/// Per-object vote tally over the visible (non-tombstoned) answers — the
/// raw material of the triage features (vote count and vote margin). A pure
/// function of the vote multiset: reordering worker arrivals cannot change
/// any field. See [`AnswerMatrix::tally_object`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoteTally {
    /// Votes per label, indexed by label id.
    pub histogram: Vec<u32>,
    /// Total visible votes on the object.
    pub count: u32,
    /// Votes on the modal label.
    pub top: u32,
    /// Votes on the runner-up label.
    pub second: u32,
    /// The modal label; ties resolve to the lowest label id (deterministic).
    pub modal: LabelId,
}

impl VoteTally {
    /// Margin between the modal and runner-up labels as a fraction of the
    /// total votes, in `[0, 1]`; 0 for unvoted objects.
    pub fn margin(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            f64::from(self.top - self.second) / f64::from(self.count)
        }
    }
}

/// Heap-memory breakdown of an [`AnswerMatrix`] — see
/// [`AnswerMatrix::memory_footprint`]. All figures are capacities (bytes the
/// allocator actually holds), not lengths.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatrixMemoryFootprint {
    /// Paged arena slabs (chunks + row tables + free lists), both views.
    pub paged_bytes: usize,
    /// Compact CSR mirrors (pair slabs + row tables + dirty tracking), both
    /// views.
    pub compact_bytes: usize,
    /// The worker tombstone mask.
    pub mask_bytes: usize,
}

impl MatrixMemoryFootprint {
    /// Total heap bytes across all components.
    pub fn total_bytes(&self) -> usize {
        self.paged_bytes + self.compact_bytes + self.mask_bytes
    }
}

/// Sparse `objects × workers` matrix of label answers over paged arenas, with
/// a per-worker tombstone mask for cheap exclusion (see the module docs).
///
/// ## Compact CSR mirrors
///
/// Next to the authoritative paged arenas the matrix maintains derived flat
/// CSR mirrors of both views ([`crate::csr`]): mutations mark the touched
/// rows dirty, [`AnswerMatrix::sync_compact_views`] patches them back from
/// the chains at batch boundaries, and every accessor transparently streams
/// a clean mirror row as a sequential slice (falling back to the chunk chain
/// for stale rows). The two storages always yield identical pair sequences,
/// so which one serves a row is invisible — down to float summation order —
/// to every reader.
#[derive(Debug, Clone)]
pub struct AnswerMatrix {
    /// For every object: chain of `(worker, label)` pairs in arrival order.
    by_object: PagedAdjacency,
    /// For every worker: chain of `(object, label)` pairs in arrival order.
    by_worker: PagedAdjacency,
    /// Flat CSR mirror of `by_object` (derived; never serialized).
    compact_by_object: CompactAdjacency,
    /// Flat CSR mirror of `by_worker` (derived; never serialized).
    compact_by_worker: CompactAdjacency,
    /// Whether accessors may serve rows from the compact mirrors. Dirty
    /// tracking continues while disabled, so re-enabling just needs a sync.
    compact_enabled: bool,
    /// Tombstone mask: `true` marks a worker whose answers are hidden.
    excluded: Vec<bool>,
    /// All recorded answers, tombstoned ones included.
    recorded_answers: usize,
    /// Answers hidden behind the tombstone mask.
    hidden_answers: usize,
}

impl AnswerMatrix {
    /// Creates an empty matrix for `num_objects` objects and `num_workers`
    /// workers.
    pub fn new(num_objects: usize, num_workers: usize) -> Self {
        Self {
            by_object: PagedAdjacency::with_rows(num_objects),
            by_worker: PagedAdjacency::with_rows(num_workers),
            compact_by_object: CompactAdjacency::with_rows(num_objects),
            compact_by_worker: CompactAdjacency::with_rows(num_workers),
            compact_enabled: true,
            excluded: vec![false; num_workers],
            recorded_answers: 0,
            hidden_answers: 0,
        }
    }

    /// Number of objects (rows).
    pub fn num_objects(&self) -> usize {
        self.by_object.num_rows()
    }

    /// Number of workers (columns).
    pub fn num_workers(&self) -> usize {
        self.by_worker.num_rows()
    }

    /// Number of visible (non-tombstoned) answers.
    pub fn num_answers(&self) -> usize {
        self.recorded_answers - self.hidden_answers
    }

    /// Number of recorded answers including those of tombstoned workers.
    pub fn num_recorded_answers(&self) -> usize {
        self.recorded_answers
    }

    /// Fraction of filled cells, in `[0, 1]`. An empty matrix has density 0.
    pub fn density(&self) -> f64 {
        let cells = self.num_objects() * self.num_workers();
        if cells == 0 {
            0.0
        } else {
            self.num_answers() as f64 / cells as f64
        }
    }

    /// Grows the id spaces so the matrix covers at least `num_objects`
    /// objects and `num_workers` workers. Existing answers are untouched;
    /// shrinking is not supported (smaller values are no-ops).
    pub fn ensure_shape(&mut self, num_objects: usize, num_workers: usize) {
        self.by_object.ensure_rows(num_objects);
        self.by_worker.ensure_rows(num_workers);
        self.compact_by_object.ensure_rows(num_objects);
        self.compact_by_worker.ensure_rows(num_workers);
        if num_workers > self.excluded.len() {
            self.excluded.resize(num_workers, false);
        }
    }

    /// Records (or overwrites) worker `w`'s answer for object `o`.
    pub fn set_answer(
        &mut self,
        object: ObjectId,
        worker: WorkerId,
        label: LabelId,
    ) -> Result<(), ModelError> {
        if object.index() >= self.num_objects() {
            return Err(ModelError::ObjectOutOfRange {
                object: object.index(),
                num_objects: self.num_objects(),
            });
        }
        if worker.index() >= self.num_workers() {
            return Err(ModelError::WorkerOutOfRange {
                worker: worker.index(),
                num_workers: self.num_workers(),
            });
        }
        let inserted =
            self.by_object
                .set(object.index(), worker.index() as u32, label.index() as u32);
        if inserted {
            self.by_worker
                .push(worker.index(), object.index() as u32, label.index() as u32);
            self.recorded_answers += 1;
            if self.excluded[worker.index()] {
                self.hidden_answers += 1;
            }
        } else {
            self.by_worker
                .set(worker.index(), object.index() as u32, label.index() as u32);
        }
        self.compact_by_object.mark_dirty(object.index());
        self.compact_by_worker.mark_dirty(worker.index());
        Ok(())
    }

    /// Removes worker `w`'s answer for object `o`, returning the label if an
    /// answer was present (tombstoned or not).
    pub fn remove_answer(&mut self, object: ObjectId, worker: WorkerId) -> Option<LabelId> {
        let label = self
            .by_object
            .remove(object.index(), worker.index() as u32)?;
        self.by_worker.remove(worker.index(), object.index() as u32);
        self.recorded_answers -= 1;
        if self.excluded[worker.index()] {
            self.hidden_answers -= 1;
        }
        self.compact_by_object.mark_dirty(object.index());
        self.compact_by_worker.mark_dirty(worker.index());
        Some(LabelId(label as usize))
    }

    /// The label worker `w` gave to object `o`, or `None` (the paper's `⊥`,
    /// also reported for tombstoned workers).
    pub fn answer(&self, object: ObjectId, worker: WorkerId) -> Option<LabelId> {
        if self.excluded.get(worker.index()).copied().unwrap_or(false) {
            return None;
        }
        self.by_object
            .get(object.index(), worker.index() as u32)
            .map(|l| LabelId(l as usize))
    }

    /// Streams a row from the clean compact mirror when possible, falling
    /// back to the paged chain. Identical pair sequence either way.
    #[inline]
    fn row_pairs_view<'a>(
        &self,
        compact: &'a CompactAdjacency,
        paged: &'a PagedAdjacency,
        row: usize,
    ) -> RowPairs<'a> {
        if self.compact_enabled {
            if let Some(slice) = compact.row_slice(row) {
                return RowPairs::Flat(slice.iter());
            }
        }
        RowPairs::Chain(paged.row_pairs(row))
    }

    /// Tallies the visible votes of one object into a [`VoteTally`]: the
    /// per-label histogram, the total count and the top-two label counts.
    /// The tally is a pure function of the vote *multiset* — arrival order
    /// cannot influence it, which is what makes it a safe triage feature
    /// (see `crowdval-triage`). Out-of-range objects tally as empty.
    pub fn tally_object(&self, object: ObjectId, num_labels: usize) -> VoteTally {
        let mut histogram = vec![0u32; num_labels];
        if object.index() < self.num_objects() {
            for (_, label) in self.answers_for_object(object) {
                histogram[label.index()] += 1;
            }
        }
        let count: u32 = histogram.iter().sum();
        let mut top = 0u32;
        let mut second = 0u32;
        let mut modal = LabelId(0);
        for (l, &c) in histogram.iter().enumerate() {
            if c > top {
                second = top;
                top = c;
                modal = LabelId(l);
            } else if c > second {
                second = c;
            }
        }
        VoteTally {
            histogram,
            count,
            top,
            second,
            modal,
        }
    }

    /// All `(worker, label)` answers recorded for an object, in arrival
    /// order, skipping tombstoned workers.
    pub fn answers_for_object(&self, object: ObjectId) -> ObjectVotes<'_> {
        ObjectVotes {
            pairs: self.row_pairs_view(&self.compact_by_object, &self.by_object, object.index()),
            excluded: &self.excluded,
        }
    }

    /// All `(object, label)` answers recorded by a worker, in arrival order.
    /// Empty when the worker is tombstoned.
    pub fn answers_for_worker(&self, worker: WorkerId) -> WorkerVotes<'_> {
        let pairs = if self.excluded.get(worker.index()).copied().unwrap_or(false) {
            RowPairs::empty()
        } else {
            self.row_pairs_view(&self.compact_by_worker, &self.by_worker, worker.index())
        };
        WorkerVotes { pairs }
    }

    // -----------------------------------------------------------------------
    // Compact CSR mirrors (million-scale sequential scans)
    // -----------------------------------------------------------------------

    /// Patches the compact mirrors back in sync with the paged arenas
    /// (rewriting dirty rows from the chains, rebuilding on garbage — see
    /// [`crate::csr`]). Call at ingest-batch boundaries; O(dirty pairs)
    /// amortized. A no-op when the mirrors are current or disabled.
    pub fn sync_compact_views(&mut self) {
        if !self.compact_enabled {
            return;
        }
        self.compact_by_object.sync(&self.by_object);
        self.compact_by_worker.sync(&self.by_worker);
    }

    /// Whether any mirror row is stale (i.e. [`Self::sync_compact_views`]
    /// would do work).
    pub fn compact_views_dirty(&self) -> bool {
        self.compact_by_object.has_dirty_rows() || self.compact_by_worker.has_dirty_rows()
    }

    /// Enables or disables serving rows from the compact mirrors. Dirty
    /// tracking continues while disabled (re-enabling needs only a sync);
    /// intended for A/B benchmarking of the paged arm.
    pub fn set_compact_enabled(&mut self, enabled: bool) {
        self.compact_enabled = enabled;
    }

    /// Whether accessors may serve rows from the compact mirrors.
    pub fn compact_enabled(&self) -> bool {
        self.compact_enabled
    }

    /// The object's raw `(worker, label)` row as a flat slice — `None` when
    /// the mirror row is stale or mirrors are disabled (fall back to
    /// [`Self::answers_for_object`]). The slice *includes* tombstoned
    /// workers' pairs; filter with [`Self::excluded_mask`] to match the
    /// iterator's semantics.
    #[inline]
    pub fn object_row_slice(&self, object: ObjectId) -> Option<&[(u32, u32)]> {
        if !self.compact_enabled {
            return None;
        }
        self.compact_by_object.row_slice(object.index())
    }

    /// The worker's raw `(object, label)` row as a flat slice — `None` when
    /// the mirror row is stale or mirrors are disabled. Tombstoned workers
    /// get `Some(&[])`, matching [`Self::answers_for_worker`].
    #[inline]
    pub fn worker_row_slice(&self, worker: WorkerId) -> Option<&[(u32, u32)]> {
        if !self.compact_enabled {
            return None;
        }
        if self.excluded.get(worker.index()).copied().unwrap_or(false) {
            return Some(&[]);
        }
        self.compact_by_worker.row_slice(worker.index())
    }

    /// The worker tombstone mask, indexed by worker id.
    #[inline]
    pub fn excluded_mask(&self) -> &[bool] {
        &self.excluded
    }

    /// Reserves arena and mirror capacity for roughly `additional` more
    /// answers. A batch-size hint, not a guarantee: worst-case chunk
    /// fragmentation can still allocate past it, but typical batch ingestion
    /// stops paying incremental `Vec` growth mid-loop.
    pub fn reserve_answers(&mut self, additional: usize) {
        self.by_object.reserve_pairs(additional);
        self.by_worker.reserve_pairs(additional);
        self.compact_by_object.reserve_pairs(additional);
        self.compact_by_worker.reserve_pairs(additional);
    }

    /// Measured heap footprint of the matrix: paged arena slabs, compact
    /// mirrors and the tombstone mask, by allocator capacity.
    pub fn memory_footprint(&self) -> MatrixMemoryFootprint {
        MatrixMemoryFootprint {
            paged_bytes: self.by_object.heap_bytes() + self.by_worker.heap_bytes(),
            compact_bytes: self.compact_by_object.heap_bytes()
                + self.compact_by_worker.heap_bytes(),
            mask_bytes: self.excluded.capacity() * std::mem::size_of::<bool>(),
        }
    }

    /// Number of visible answers given for an object.
    pub fn object_answer_count(&self, object: ObjectId) -> usize {
        if self.hidden_answers == 0 {
            self.by_object.row_len(object.index())
        } else {
            self.answers_for_object(object).count()
        }
    }

    /// Number of visible answers given by a worker (0 when tombstoned).
    pub fn worker_answer_count(&self, worker: WorkerId) -> usize {
        if self.excluded.get(worker.index()).copied().unwrap_or(false) {
            0
        } else {
            self.by_worker.row_len(worker.index())
        }
    }

    /// Iterator over all visible `(object, worker, label)` triples in object
    /// order (arrival order within an object).
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, WorkerId, LabelId)> + '_ {
        (0..self.num_objects()).flat_map(move |o| {
            self.answers_for_object(ObjectId(o))
                .map(move |(w, l)| (ObjectId(o), w, l))
        })
    }

    /// Largest label index used anywhere in the matrix (tombstoned answers
    /// included — the label range must stay valid across re-inclusion), or
    /// `None` when empty.
    pub fn max_label_index(&self) -> Option<usize> {
        (0..self.num_objects())
            .flat_map(|o| self.by_object.row_pairs(o))
            .map(|(_, l)| l as usize)
            .max()
    }

    // -----------------------------------------------------------------------
    // Worker tombstones (§5.3 exclusion without copies)
    // -----------------------------------------------------------------------

    /// Sets or clears the tombstone of one worker. `O(1)` plus the count
    /// update; no answers are copied or moved.
    pub fn set_worker_excluded(&mut self, worker: WorkerId, excluded: bool) {
        let w = worker.index();
        if w >= self.excluded.len() || self.excluded[w] == excluded {
            return;
        }
        self.excluded[w] = excluded;
        let row = self.by_worker.row_len(w);
        if excluded {
            self.hidden_answers += row;
        } else {
            self.hidden_answers -= row;
        }
    }

    /// Whether a worker is currently tombstoned.
    pub fn is_worker_excluded(&self, worker: WorkerId) -> bool {
        self.excluded.get(worker.index()).copied().unwrap_or(false)
    }

    /// Currently tombstoned workers, in id order.
    pub fn excluded_workers(&self) -> Vec<WorkerId> {
        self.excluded
            .iter()
            .enumerate()
            .filter_map(|(w, &e)| e.then_some(WorkerId(w)))
            .collect()
    }

    /// Number of tombstoned workers.
    pub fn num_excluded_workers(&self) -> usize {
        self.excluded.iter().filter(|&&e| e).count()
    }

    /// Clears every tombstone.
    pub fn clear_exclusions(&mut self) {
        self.excluded.fill(false);
        self.hidden_answers = 0;
    }

    /// Returns a copy of the matrix with every answer by `worker` hidden
    /// behind the tombstone mask. Used when suspected faulty workers are
    /// (temporarily) excluded (§5.3). The copy shares nothing with `self`,
    /// but the exclusion itself is a mask flip, not an answer-by-answer
    /// removal.
    pub fn without_worker(&self, worker: WorkerId) -> AnswerMatrix {
        let mut out = self.clone();
        out.set_worker_excluded(worker, true);
        out
    }
}

impl PartialEq for AnswerMatrix {
    /// Two matrices are equal when they have the same shape, the same
    /// tombstone mask, and every object row contains the same votes in the
    /// same arrival order.
    fn eq(&self, other: &Self) -> bool {
        self.num_objects() == other.num_objects()
            && self.num_workers() == other.num_workers()
            && self.excluded == other.excluded
            && self.recorded_answers == other.recorded_answers
            && (0..self.num_objects()).all(|o| self.by_object.rows_equal(&other.by_object, o))
    }
}

impl Eq for AnswerMatrix {}

/// Renders one adjacency view as row lists of `[id, label]` pairs, in the
/// exact chain (arrival) order.
fn adjacency_to_value(adj: &PagedAdjacency) -> Value {
    Value::Array(
        (0..adj.num_rows())
            .map(|row| {
                Value::Array(
                    adj.row_pairs(row)
                        .map(|(id, l)| {
                            Value::Array(vec![Value::UInt(id as u64), Value::UInt(l as u64)])
                        })
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Rebuilds one adjacency view from serialized row lists, preserving the
/// within-row order and rejecting duplicate ids inside a row.
fn adjacency_from_value(
    value: &Value,
    rows: usize,
    ids: usize,
    what: &str,
) -> Result<PagedAdjacency, serde::Error> {
    let row_values = value
        .as_array()
        .ok_or_else(|| serde::Error::custom(format!("expected {what} row array")))?;
    if row_values.len() != rows {
        return Err(serde::Error::custom(format!(
            "{what}: expected {rows} rows, got {}",
            row_values.len()
        )));
    }
    let mut adj = PagedAdjacency::with_rows(rows);
    let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for (row, pairs) in row_values.iter().enumerate() {
        let pairs = pairs
            .as_array()
            .ok_or_else(|| serde::Error::custom(format!("expected {what} pair array")))?;
        seen.clear();
        for pair in pairs {
            let (id, label) = <(usize, usize)>::from_value(pair)?;
            if id >= ids {
                return Err(serde::Error::custom(format!(
                    "{what}: id {id} out of range (< {ids})"
                )));
            }
            if !seen.insert(id as u32) {
                return Err(serde::Error::custom(format!(
                    "{what}: duplicate id {id} in row {row}"
                )));
            }
            adj.push(row, id as u32, label as u32);
        }
    }
    Ok(adj)
}

impl Serialize for AnswerMatrix {
    /// Serializes **both** adjacency views with their exact within-row
    /// (arrival) order. A rebuild through `set_answer` from object-major
    /// triples would reconstruct the same *content* but scramble the
    /// by-worker rows into object-major order — and because the EM kernels
    /// stream per-worker votes in row order, float summation order (and so
    /// the last ULP of the estimates) would change. Snapshot/restore
    /// promises bit-identical resumption, so the layout that determines
    /// iteration order is part of the format.
    fn to_value(&self) -> Value {
        let excluded: Vec<Value> = self
            .excluded
            .iter()
            .enumerate()
            .filter_map(|(w, &e)| e.then_some(Value::UInt(w as u64)))
            .collect();
        Value::Object(vec![
            (
                "num_objects".to_string(),
                Value::UInt(self.num_objects() as u64),
            ),
            (
                "num_workers".to_string(),
                Value::UInt(self.num_workers() as u64),
            ),
            ("by_object".to_string(), adjacency_to_value(&self.by_object)),
            ("by_worker".to_string(), adjacency_to_value(&self.by_worker)),
            ("excluded".to_string(), Value::Array(excluded)),
        ])
    }
}

impl Deserialize for AnswerMatrix {
    fn from_value(value: &Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected answer-matrix object"))?;
        let num_objects = usize::from_value(serde::get_field(entries, "num_objects")?)?;
        let num_workers = usize::from_value(serde::get_field(entries, "num_workers")?)?;
        let by_object = adjacency_from_value(
            serde::get_field(entries, "by_object")?,
            num_objects,
            num_workers,
            "by_object",
        )?;
        let by_worker = adjacency_from_value(
            serde::get_field(entries, "by_worker")?,
            num_workers,
            num_objects,
            "by_worker",
        )?;
        // The two views must describe the same vote set. One hash map over
        // the object view, one linear sweep over the worker view — O(votes)
        // total; with per-row uniqueness already enforced, equal counts plus
        // worker⊆object membership make the two views a bijection.
        let mut votes: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::new();
        let mut recorded_answers = 0usize;
        for o in 0..num_objects {
            for (w, l) in by_object.row_pairs(o) {
                votes.insert((o as u32, w), l);
                recorded_answers += 1;
            }
        }
        let mut worker_total = 0usize;
        for w in 0..num_workers {
            for (o, l) in by_worker.row_pairs(w) {
                if votes.get(&(o, w as u32)) != Some(&l) {
                    return Err(serde::Error::custom(format!(
                        "adjacency views disagree on object {o} / worker {w}"
                    )));
                }
                worker_total += 1;
            }
        }
        if worker_total != recorded_answers {
            return Err(serde::Error::custom(format!(
                "adjacency views hold different vote counts \
                 ({recorded_answers} by object, {worker_total} by worker)"
            )));
        }
        // The compact mirrors are derived state: start them fully stale and
        // let the first sync patch them from the restored arenas.
        let compact_by_object = CompactAdjacency::stale_for(&by_object);
        let compact_by_worker = CompactAdjacency::stale_for(&by_worker);
        let mut matrix = AnswerMatrix {
            by_object,
            by_worker,
            compact_by_object,
            compact_by_worker,
            compact_enabled: true,
            excluded: vec![false; num_workers],
            recorded_answers,
            hidden_answers: 0,
        };
        let excluded = serde::get_field(entries, "excluded")?
            .as_array()
            .ok_or_else(|| serde::Error::custom("expected excluded array"))?;
        for w in excluded {
            let w = usize::from_value(w)?;
            if w >= num_workers {
                return Err(serde::Error::custom(format!(
                    "excluded worker {w} out of range"
                )));
            }
            matrix.set_worker_excluded(WorkerId(w), true);
        }
        Ok(matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AnswerMatrix {
        let mut m = AnswerMatrix::new(3, 2);
        m.set_answer(ObjectId(0), WorkerId(0), LabelId(1)).unwrap();
        m.set_answer(ObjectId(0), WorkerId(1), LabelId(0)).unwrap();
        m.set_answer(ObjectId(2), WorkerId(1), LabelId(1)).unwrap();
        m
    }

    #[test]
    fn set_and_get_answers() {
        let m = small();
        assert_eq!(m.answer(ObjectId(0), WorkerId(0)), Some(LabelId(1)));
        assert_eq!(m.answer(ObjectId(0), WorkerId(1)), Some(LabelId(0)));
        assert_eq!(m.answer(ObjectId(1), WorkerId(0)), None);
        assert_eq!(m.num_answers(), 3);
    }

    #[test]
    fn overwriting_an_answer_does_not_increase_count() {
        let mut m = small();
        m.set_answer(ObjectId(0), WorkerId(0), LabelId(0)).unwrap();
        assert_eq!(m.num_answers(), 3);
        assert_eq!(m.answer(ObjectId(0), WorkerId(0)), Some(LabelId(0)));
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let mut m = AnswerMatrix::new(2, 2);
        assert!(matches!(
            m.set_answer(ObjectId(2), WorkerId(0), LabelId(0)),
            Err(ModelError::ObjectOutOfRange { .. })
        ));
        assert!(matches!(
            m.set_answer(ObjectId(0), WorkerId(9), LabelId(0)),
            Err(ModelError::WorkerOutOfRange { .. })
        ));
    }

    #[test]
    fn remove_answer_updates_both_indexes() {
        let mut m = small();
        assert_eq!(m.remove_answer(ObjectId(0), WorkerId(1)), Some(LabelId(0)));
        assert_eq!(m.remove_answer(ObjectId(0), WorkerId(1)), None);
        assert_eq!(m.num_answers(), 2);
        assert_eq!(m.answers_for_worker(WorkerId(1)).count(), 1);
        assert_eq!(m.answers_for_object(ObjectId(0)).count(), 1);
    }

    #[test]
    fn density_reflects_fill_ratio() {
        let m = small();
        assert!((m.density() - 3.0 / 6.0).abs() < 1e-12);
        assert_eq!(AnswerMatrix::new(0, 0).density(), 0.0);
    }

    #[test]
    fn per_object_and_per_worker_views_agree() {
        let m = small();
        assert_eq!(m.object_answer_count(ObjectId(0)), 2);
        assert_eq!(m.worker_answer_count(WorkerId(1)), 2);
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(triples.len(), 3);
        assert!(triples.contains(&(ObjectId(2), WorkerId(1), LabelId(1))));
    }

    #[test]
    fn without_worker_removes_all_their_answers() {
        let m = small();
        let pruned = m.without_worker(WorkerId(1));
        assert_eq!(pruned.num_answers(), 1);
        assert_eq!(pruned.worker_answer_count(WorkerId(1)), 0);
        // original untouched
        assert_eq!(m.num_answers(), 3);
    }

    #[test]
    fn max_label_index_tracks_answers() {
        assert_eq!(AnswerMatrix::new(2, 2).max_label_index(), None);
        assert_eq!(small().max_label_index(), Some(1));
    }

    #[test]
    fn rows_spill_across_chunks() {
        let workers = 3 * CHUNK_CAP + 1;
        let mut m = AnswerMatrix::new(2, workers);
        for w in 0..workers {
            m.set_answer(ObjectId(1), WorkerId(w), LabelId(w % 2))
                .unwrap();
        }
        assert_eq!(m.object_answer_count(ObjectId(1)), workers);
        let collected: Vec<_> = m.answers_for_object(ObjectId(1)).collect();
        assert_eq!(collected.len(), workers);
        // Arrival order preserved across chunk boundaries.
        for (i, &(w, l)) in collected.iter().enumerate() {
            assert_eq!(w, WorkerId(i));
            assert_eq!(l, LabelId(i % 2));
        }
        // Overwrite deep inside the chain.
        m.set_answer(ObjectId(1), WorkerId(CHUNK_CAP + 2), LabelId(1))
            .unwrap();
        assert_eq!(m.object_answer_count(ObjectId(1)), workers);
        assert_eq!(
            m.answer(ObjectId(1), WorkerId(CHUNK_CAP + 2)),
            Some(LabelId(1))
        );
    }

    #[test]
    fn remove_recycles_emptied_chunks() {
        let mut m = AnswerMatrix::new(1, 2 * CHUNK_CAP);
        for w in 0..2 * CHUNK_CAP {
            m.set_answer(ObjectId(0), WorkerId(w), LabelId(0)).unwrap();
        }
        for w in 0..2 * CHUNK_CAP {
            assert_eq!(m.remove_answer(ObjectId(0), WorkerId(w)), Some(LabelId(0)));
        }
        assert_eq!(m.num_answers(), 0);
        assert_eq!(m.object_answer_count(ObjectId(0)), 0);
        // The arena can be refilled after full removal.
        m.set_answer(ObjectId(0), WorkerId(1), LabelId(1)).unwrap();
        assert_eq!(m.answer(ObjectId(0), WorkerId(1)), Some(LabelId(1)));
    }

    #[test]
    fn tombstones_hide_answers_without_removing_them() {
        let mut m = small();
        m.set_worker_excluded(WorkerId(1), true);
        assert_eq!(m.num_answers(), 1);
        assert_eq!(m.num_recorded_answers(), 3);
        assert_eq!(m.worker_answer_count(WorkerId(1)), 0);
        assert_eq!(m.object_answer_count(ObjectId(0)), 1);
        assert_eq!(m.answer(ObjectId(0), WorkerId(1)), None);
        assert_eq!(m.answers_for_worker(WorkerId(1)).count(), 0);
        assert_eq!(m.iter().count(), 1);
        assert_eq!(m.excluded_workers(), vec![WorkerId(1)]);
        // Re-inclusion restores everything.
        m.set_worker_excluded(WorkerId(1), false);
        assert_eq!(m.num_answers(), 3);
        assert_eq!(m.worker_answer_count(WorkerId(1)), 2);
        assert_eq!(m.answer(ObjectId(0), WorkerId(1)), Some(LabelId(0)));
        assert_eq!(m.num_excluded_workers(), 0);
    }

    #[test]
    fn tombstones_account_for_votes_recorded_while_excluded() {
        let mut m = AnswerMatrix::new(2, 2);
        m.set_worker_excluded(WorkerId(0), true);
        m.set_answer(ObjectId(0), WorkerId(0), LabelId(0)).unwrap();
        assert_eq!(m.num_answers(), 0);
        m.set_worker_excluded(WorkerId(0), false);
        assert_eq!(m.num_answers(), 1);
    }

    #[test]
    fn ensure_shape_grows_id_spaces() {
        let mut m = small();
        m.ensure_shape(5, 4);
        assert_eq!(m.num_objects(), 5);
        assert_eq!(m.num_workers(), 4);
        assert_eq!(m.num_answers(), 3);
        m.set_answer(ObjectId(4), WorkerId(3), LabelId(0)).unwrap();
        assert_eq!(m.num_answers(), 4);
        // Shrinking is a no-op.
        m.ensure_shape(1, 1);
        assert_eq!(m.num_objects(), 5);
    }

    #[test]
    fn equality_is_shape_votes_and_mask() {
        let a = small();
        let mut b = small();
        assert_eq!(a, b);
        b.set_worker_excluded(WorkerId(0), true);
        assert_ne!(a, b);
        b.set_worker_excluded(WorkerId(0), false);
        assert_eq!(a, b);
        b.set_answer(ObjectId(1), WorkerId(0), LabelId(0)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn serde_round_trips_votes_and_mask() {
        let mut m = small();
        m.set_worker_excluded(WorkerId(0), true);
        let restored = AnswerMatrix::from_value(&m.to_value()).unwrap();
        assert_eq!(m, restored);
        assert_eq!(restored.num_answers(), m.num_answers());
        assert!(restored.is_worker_excluded(WorkerId(0)));
    }

    #[test]
    fn serde_preserves_both_adjacency_orders() {
        // Interleaved arrival: the by-worker rows are NOT object-major.
        let mut m = AnswerMatrix::new(3, 2);
        m.set_answer(ObjectId(2), WorkerId(0), LabelId(1)).unwrap();
        m.set_answer(ObjectId(0), WorkerId(1), LabelId(0)).unwrap();
        m.set_answer(ObjectId(0), WorkerId(0), LabelId(0)).unwrap();
        m.set_answer(ObjectId(1), WorkerId(0), LabelId(1)).unwrap();
        let restored = AnswerMatrix::from_value(&m.to_value()).unwrap();
        for o in 0..3 {
            let a: Vec<_> = m.answers_for_object(ObjectId(o)).collect();
            let b: Vec<_> = restored.answers_for_object(ObjectId(o)).collect();
            assert_eq!(a, b, "object {o} row order changed");
        }
        for w in 0..2 {
            let a: Vec<_> = m.answers_for_worker(WorkerId(w)).collect();
            let b: Vec<_> = restored.answers_for_worker(WorkerId(w)).collect();
            assert_eq!(a, b, "worker {w} row order changed");
        }
    }

    /// Interleaved stream large enough to spill chunks in both views.
    fn interleaved(objects: usize, workers: usize) -> AnswerMatrix {
        let mut m = AnswerMatrix::new(objects, workers);
        for i in 0..objects * 3 {
            let o = (i * 7) % objects;
            let w = (i * 11) % workers;
            m.set_answer(ObjectId(o), WorkerId(w), LabelId(i % 3))
                .unwrap();
        }
        m
    }

    fn assert_same_votes(a: &AnswerMatrix, b: &AnswerMatrix) {
        for o in 0..a.num_objects() {
            let x: Vec<_> = a.answers_for_object(ObjectId(o)).collect();
            let y: Vec<_> = b.answers_for_object(ObjectId(o)).collect();
            assert_eq!(x, y, "object {o} rows diverge");
        }
        for w in 0..a.num_workers() {
            let x: Vec<_> = a.answers_for_worker(WorkerId(w)).collect();
            let y: Vec<_> = b.answers_for_worker(WorkerId(w)).collect();
            assert_eq!(x, y, "worker {w} rows diverge");
        }
    }

    #[test]
    fn compact_views_mirror_the_arena_after_sync() {
        let mut m = interleaved(17, 5);
        let mut paged_only = m.clone();
        paged_only.set_compact_enabled(false);
        m.sync_compact_views();
        assert!(!m.compact_views_dirty());
        assert_same_votes(&m, &paged_only);
        // Every object row is now servable as a flat slice.
        for o in 0..m.num_objects() {
            let slice = m.object_row_slice(ObjectId(o)).expect("clean after sync");
            let chain: Vec<_> = paged_only
                .answers_for_object(ObjectId(o))
                .map(|(w, l)| (w.index() as u32, l.index() as u32))
                .collect();
            assert_eq!(slice, &chain[..]);
        }
    }

    #[test]
    fn compact_rows_go_stale_on_mutation_and_recover() {
        let mut m = interleaved(9, 4);
        m.sync_compact_views();
        m.set_answer(ObjectId(2), WorkerId(1), LabelId(2)).unwrap();
        assert!(m.object_row_slice(ObjectId(2)).is_none());
        assert!(m.worker_row_slice(WorkerId(1)).is_none());
        // Stale rows fall back to the chain and stay correct.
        let mut paged_only = m.clone();
        paged_only.set_compact_enabled(false);
        assert_same_votes(&m, &paged_only);
        m.sync_compact_views();
        assert!(m.object_row_slice(ObjectId(2)).is_some());
        assert_same_votes(&m, &paged_only);
        // Removal dirties too.
        m.remove_answer(ObjectId(2), WorkerId(1));
        assert!(m.object_row_slice(ObjectId(2)).is_none());
        m.sync_compact_views();
        paged_only = m.clone();
        paged_only.set_compact_enabled(false);
        assert_same_votes(&m, &paged_only);
    }

    #[test]
    fn tombstones_do_not_dirty_compact_views() {
        let mut m = interleaved(6, 3);
        m.sync_compact_views();
        m.set_worker_excluded(WorkerId(1), true);
        assert!(!m.compact_views_dirty());
        // Object slices still hold the raw pairs; the mask filters.
        let raw = m.object_row_slice(ObjectId(0)).unwrap();
        let filtered: Vec<_> = m.answers_for_object(ObjectId(0)).collect();
        assert!(raw.len() >= filtered.len());
        assert!(filtered.iter().all(|&(w, _)| !m.excluded_mask()[w.index()]));
        // Worker slices honour the tombstone outright.
        assert_eq!(m.worker_row_slice(WorkerId(1)), Some(&[][..]));
        m.set_worker_excluded(WorkerId(1), false);
        assert!(!m.worker_row_slice(WorkerId(1)).unwrap().is_empty());
    }

    #[test]
    fn serde_restores_with_stale_mirrors() {
        let mut m = interleaved(8, 4);
        m.sync_compact_views();
        let restored = AnswerMatrix::from_value(&m.to_value()).unwrap();
        // Mirrors come back stale and recover on the next sync.
        assert!(restored.compact_views_dirty());
        let mut restored = restored;
        restored.sync_compact_views();
        assert_same_votes(&m, &restored);
        assert_eq!(m, restored);
    }

    #[test]
    fn memory_footprint_tracks_growth() {
        let mut m = AnswerMatrix::new(4, 4);
        let empty = m.memory_footprint();
        for o in 0..4 {
            for w in 0..4 {
                m.set_answer(ObjectId(o), WorkerId(w), LabelId(0)).unwrap();
            }
        }
        m.sync_compact_views();
        let filled = m.memory_footprint();
        assert!(filled.paged_bytes > empty.paged_bytes);
        assert!(filled.compact_bytes > empty.compact_bytes);
        assert_eq!(
            filled.total_bytes(),
            filled.paged_bytes + filled.compact_bytes + filled.mask_bytes
        );
    }

    #[test]
    fn reserve_answers_preallocates_capacity() {
        let mut m = AnswerMatrix::new(2, 2);
        let before = m.memory_footprint().total_bytes();
        m.reserve_answers(1024);
        assert!(m.memory_footprint().total_bytes() > before);
        m.set_answer(ObjectId(0), WorkerId(0), LabelId(0)).unwrap();
        m.sync_compact_views();
        assert_eq!(m.num_answers(), 1);
    }

    #[test]
    fn serde_rejects_inconsistent_adjacency_views() {
        let m = small();
        let value = m.to_value();
        // Tamper: drop the by_worker rows entirely.
        let Value::Object(mut entries) = value else {
            panic!("expected object");
        };
        for (key, v) in &mut entries {
            if key == "by_worker" {
                *v = Value::Array(vec![Value::Array(vec![]), Value::Array(vec![])]);
            }
        }
        assert!(AnswerMatrix::from_value(&Value::Object(entries)).is_err());
    }
}
