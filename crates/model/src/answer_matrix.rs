//! Sparse answer matrix `M` (paper §3.1).
//!
//! Each cell `M(o, w)` holds the label worker `w` gave to object `o`, or is
//! empty (the paper's `⊥`) when the worker skipped the object. Because workers
//! only answer a limited number of questions the matrix is sparse (§5.4), so
//! we keep two adjacency lists — per object and per worker — instead of a
//! dense `n × k` grid.

use crate::error::ModelError;
use crate::ids::{LabelId, ObjectId, WorkerId};
use serde::{Deserialize, Serialize};

/// Sparse `objects × workers` matrix of label answers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnswerMatrix {
    num_objects: usize,
    num_workers: usize,
    /// For every object: the `(worker, label)` pairs that answered it, kept
    /// sorted by worker for deterministic iteration.
    by_object: Vec<Vec<(WorkerId, LabelId)>>,
    /// For every worker: the `(object, label)` pairs they answered, kept
    /// sorted by object for deterministic iteration.
    by_worker: Vec<Vec<(ObjectId, LabelId)>>,
    num_answers: usize,
}

impl AnswerMatrix {
    /// Creates an empty matrix for `num_objects` objects and `num_workers`
    /// workers.
    pub fn new(num_objects: usize, num_workers: usize) -> Self {
        Self {
            num_objects,
            num_workers,
            by_object: vec![Vec::new(); num_objects],
            by_worker: vec![Vec::new(); num_workers],
            num_answers: 0,
        }
    }

    /// Number of objects (rows).
    pub fn num_objects(&self) -> usize {
        self.num_objects
    }

    /// Number of workers (columns).
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// Total number of non-empty cells.
    pub fn num_answers(&self) -> usize {
        self.num_answers
    }

    /// Fraction of filled cells, in `[0, 1]`. An empty matrix has density 0.
    pub fn density(&self) -> f64 {
        let cells = self.num_objects * self.num_workers;
        if cells == 0 {
            0.0
        } else {
            self.num_answers as f64 / cells as f64
        }
    }

    /// Records (or overwrites) worker `w`'s answer for object `o`.
    pub fn set_answer(
        &mut self,
        object: ObjectId,
        worker: WorkerId,
        label: LabelId,
    ) -> Result<(), ModelError> {
        if object.index() >= self.num_objects {
            return Err(ModelError::ObjectOutOfRange {
                object: object.index(),
                num_objects: self.num_objects,
            });
        }
        if worker.index() >= self.num_workers {
            return Err(ModelError::WorkerOutOfRange {
                worker: worker.index(),
                num_workers: self.num_workers,
            });
        }

        let obj_answers = &mut self.by_object[object.index()];
        match obj_answers.binary_search_by_key(&worker, |(w, _)| *w) {
            Ok(pos) => obj_answers[pos].1 = label,
            Err(pos) => {
                obj_answers.insert(pos, (worker, label));
                self.num_answers += 1;
            }
        }

        let worker_answers = &mut self.by_worker[worker.index()];
        match worker_answers.binary_search_by_key(&object, |(o, _)| *o) {
            Ok(pos) => worker_answers[pos].1 = label,
            Err(pos) => worker_answers.insert(pos, (object, label)),
        }
        Ok(())
    }

    /// Removes worker `w`'s answer for object `o`, returning the label if an
    /// answer was present.
    pub fn remove_answer(&mut self, object: ObjectId, worker: WorkerId) -> Option<LabelId> {
        let obj_answers = self.by_object.get_mut(object.index())?;
        let pos = obj_answers
            .binary_search_by_key(&worker, |(w, _)| *w)
            .ok()?;
        let (_, label) = obj_answers.remove(pos);
        let worker_answers = &mut self.by_worker[worker.index()];
        if let Ok(pos) = worker_answers.binary_search_by_key(&object, |(o, _)| *o) {
            worker_answers.remove(pos);
        }
        self.num_answers -= 1;
        Some(label)
    }

    /// The label worker `w` gave to object `o`, or `None` (the paper's `⊥`).
    pub fn answer(&self, object: ObjectId, worker: WorkerId) -> Option<LabelId> {
        let obj_answers = self.by_object.get(object.index())?;
        obj_answers
            .binary_search_by_key(&worker, |(w, _)| *w)
            .ok()
            .map(|pos| obj_answers[pos].1)
    }

    /// All `(worker, label)` answers recorded for an object, sorted by worker.
    pub fn answers_for_object(&self, object: ObjectId) -> &[(WorkerId, LabelId)] {
        self.by_object
            .get(object.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All `(object, label)` answers recorded for a worker, sorted by object.
    pub fn answers_for_worker(&self, worker: WorkerId) -> &[(ObjectId, LabelId)] {
        self.by_worker
            .get(worker.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of answers given for an object.
    pub fn object_answer_count(&self, object: ObjectId) -> usize {
        self.answers_for_object(object).len()
    }

    /// Number of answers given by a worker.
    pub fn worker_answer_count(&self, worker: WorkerId) -> usize {
        self.answers_for_worker(worker).len()
    }

    /// Iterator over all `(object, worker, label)` triples in object order.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, WorkerId, LabelId)> + '_ {
        self.by_object
            .iter()
            .enumerate()
            .flat_map(|(o, answers)| answers.iter().map(move |&(w, l)| (ObjectId(o), w, l)))
    }

    /// Largest label index used anywhere in the matrix, or `None` when empty.
    pub fn max_label_index(&self) -> Option<usize> {
        self.iter().map(|(_, _, l)| l.index()).max()
    }

    /// Returns a copy of the matrix with every answer by `worker` removed.
    /// Used when suspected faulty workers are (temporarily) excluded (§5.3).
    pub fn without_worker(&self, worker: WorkerId) -> AnswerMatrix {
        let mut out = self.clone();
        let answered: Vec<ObjectId> = out
            .answers_for_worker(worker)
            .iter()
            .map(|&(o, _)| o)
            .collect();
        for o in answered {
            out.remove_answer(o, worker);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> AnswerMatrix {
        let mut m = AnswerMatrix::new(3, 2);
        m.set_answer(ObjectId(0), WorkerId(0), LabelId(1)).unwrap();
        m.set_answer(ObjectId(0), WorkerId(1), LabelId(0)).unwrap();
        m.set_answer(ObjectId(2), WorkerId(1), LabelId(1)).unwrap();
        m
    }

    #[test]
    fn set_and_get_answers() {
        let m = small();
        assert_eq!(m.answer(ObjectId(0), WorkerId(0)), Some(LabelId(1)));
        assert_eq!(m.answer(ObjectId(0), WorkerId(1)), Some(LabelId(0)));
        assert_eq!(m.answer(ObjectId(1), WorkerId(0)), None);
        assert_eq!(m.num_answers(), 3);
    }

    #[test]
    fn overwriting_an_answer_does_not_increase_count() {
        let mut m = small();
        m.set_answer(ObjectId(0), WorkerId(0), LabelId(0)).unwrap();
        assert_eq!(m.num_answers(), 3);
        assert_eq!(m.answer(ObjectId(0), WorkerId(0)), Some(LabelId(0)));
    }

    #[test]
    fn out_of_range_indices_are_rejected() {
        let mut m = AnswerMatrix::new(2, 2);
        assert!(matches!(
            m.set_answer(ObjectId(2), WorkerId(0), LabelId(0)),
            Err(ModelError::ObjectOutOfRange { .. })
        ));
        assert!(matches!(
            m.set_answer(ObjectId(0), WorkerId(9), LabelId(0)),
            Err(ModelError::WorkerOutOfRange { .. })
        ));
    }

    #[test]
    fn remove_answer_updates_both_indexes() {
        let mut m = small();
        assert_eq!(m.remove_answer(ObjectId(0), WorkerId(1)), Some(LabelId(0)));
        assert_eq!(m.remove_answer(ObjectId(0), WorkerId(1)), None);
        assert_eq!(m.num_answers(), 2);
        assert_eq!(m.answers_for_worker(WorkerId(1)).len(), 1);
        assert_eq!(m.answers_for_object(ObjectId(0)).len(), 1);
    }

    #[test]
    fn density_reflects_fill_ratio() {
        let m = small();
        assert!((m.density() - 3.0 / 6.0).abs() < 1e-12);
        assert_eq!(AnswerMatrix::new(0, 0).density(), 0.0);
    }

    #[test]
    fn per_object_and_per_worker_views_agree() {
        let m = small();
        assert_eq!(m.object_answer_count(ObjectId(0)), 2);
        assert_eq!(m.worker_answer_count(WorkerId(1)), 2);
        let triples: Vec<_> = m.iter().collect();
        assert_eq!(triples.len(), 3);
        assert!(triples.contains(&(ObjectId(2), WorkerId(1), LabelId(1))));
    }

    #[test]
    fn without_worker_removes_all_their_answers() {
        let m = small();
        let pruned = m.without_worker(WorkerId(1));
        assert_eq!(pruned.num_answers(), 1);
        assert_eq!(pruned.worker_answer_count(WorkerId(1)), 0);
        // original untouched
        assert_eq!(m.num_answers(), 3);
    }

    #[test]
    fn max_label_index_tracks_answers() {
        assert_eq!(AnswerMatrix::new(2, 2).max_label_index(), None);
        assert_eq!(small().max_label_index(), Some(1));
    }
}
