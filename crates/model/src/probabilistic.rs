//! The probabilistic answer set `P = ⟨N, e, U, C⟩` (paper §3.1).
//!
//! A probabilistic answer set bundles the outcome of answer aggregation: the
//! assignment matrix `U`, one confusion matrix per worker, and the label
//! priors. The answer set `N` and the expert validation function `e` are kept
//! by the validation process itself; this struct captures the state that the
//! i-EM algorithm threads from one validation iteration to the next.

use crate::assignment::{AssignmentMatrix, DeterministicAssignment};
use crate::confusion::ConfusionMatrix;
use crate::ids::{ObjectId, WorkerId};
use serde::{Deserialize, Serialize};

/// Aggregated, probabilistic view of an answer set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbabilisticAnswerSet {
    assignment: AssignmentMatrix,
    confusions: Vec<ConfusionMatrix>,
    priors: Vec<f64>,
    /// Number of EM iterations spent producing this state (bookkeeping for
    /// the incrementality experiments, Fig. 8).
    em_iterations: usize,
}

impl ProbabilisticAnswerSet {
    /// Creates the maximally uninformed state: uniform assignment, uniform
    /// confusion matrices, uniform priors.
    pub fn uninformed(num_objects: usize, num_workers: usize, num_labels: usize) -> Self {
        Self {
            assignment: AssignmentMatrix::uniform(num_objects, num_labels),
            confusions: vec![ConfusionMatrix::uniform(num_labels); num_workers],
            priors: vec![1.0 / num_labels as f64; num_labels],
            em_iterations: 0,
        }
    }

    /// Bundles aggregation output into a probabilistic answer set.
    pub fn new(
        assignment: AssignmentMatrix,
        confusions: Vec<ConfusionMatrix>,
        priors: Vec<f64>,
        em_iterations: usize,
    ) -> Self {
        Self {
            assignment,
            confusions,
            priors,
            em_iterations,
        }
    }

    /// The assignment matrix `U`.
    pub fn assignment(&self) -> &AssignmentMatrix {
        &self.assignment
    }

    /// Mutable access to the assignment matrix.
    pub fn assignment_mut(&mut self) -> &mut AssignmentMatrix {
        &mut self.assignment
    }

    /// The confusion matrix of one worker.
    pub fn confusion(&self, worker: WorkerId) -> &ConfusionMatrix {
        &self.confusions[worker.index()]
    }

    /// All confusion matrices, indexed by worker.
    pub fn confusions(&self) -> &[ConfusionMatrix] {
        &self.confusions
    }

    /// Label priors `p(l)`.
    pub fn priors(&self) -> &[f64] {
        &self.priors
    }

    /// Number of workers covered.
    pub fn num_workers(&self) -> usize {
        self.confusions.len()
    }

    /// Number of objects covered.
    pub fn num_objects(&self) -> usize {
        self.assignment.num_objects()
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.assignment.num_labels()
    }

    /// Number of EM iterations used to produce this state.
    pub fn em_iterations(&self) -> usize {
        self.em_iterations
    }

    /// Total uncertainty `H(P)` (Eq. 7).
    pub fn uncertainty(&self) -> f64 {
        self.assignment.total_entropy()
    }

    /// Entropy of a single object under this state.
    pub fn object_uncertainty(&self, object: ObjectId) -> f64 {
        self.assignment.object_entropy(object)
    }

    /// Deterministic assignment instantiated from `U` (the *filter* step).
    pub fn instantiate(&self) -> DeterministicAssignment {
        self.assignment.instantiate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LabelId;

    #[test]
    fn uninformed_state_is_uniform_everywhere() {
        let p = ProbabilisticAnswerSet::uninformed(3, 2, 2);
        assert_eq!(p.num_objects(), 3);
        assert_eq!(p.num_workers(), 2);
        assert_eq!(p.num_labels(), 2);
        assert_eq!(p.em_iterations(), 0);
        assert!((p.uncertainty() - 3.0 * 2.0_f64.ln()).abs() < 1e-12);
        assert!((p.priors()[0] - 0.5).abs() < 1e-12);
        assert!((p.confusion(WorkerId(1)).prob(LabelId(0), LabelId(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn instantiate_uses_assignment_argmax() {
        let mut p = ProbabilisticAnswerSet::uninformed(2, 1, 2);
        p.assignment_mut().set_certain(ObjectId(0), LabelId(1));
        let d = p.instantiate();
        assert_eq!(d.label(ObjectId(0)), LabelId(1));
        assert_eq!(p.object_uncertainty(ObjectId(0)), 0.0);
        assert!(p.object_uncertainty(ObjectId(1)) > 0.0);
    }

    #[test]
    fn new_bundles_components() {
        let assignment = AssignmentMatrix::uniform(1, 2);
        let confusions = vec![ConfusionMatrix::identity(2)];
        let p = ProbabilisticAnswerSet::new(assignment, confusions, vec![0.5, 0.5], 7);
        assert_eq!(p.em_iterations(), 7);
        assert_eq!(p.confusions().len(), 1);
    }
}
