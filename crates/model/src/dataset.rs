//! Datasets: an answer set plus ground truth and descriptive statistics
//! (paper Table 4).

use crate::answer_set::AnswerSet;
use crate::error::ModelError;
use crate::ground_truth::GroundTruth;
use serde::{Deserialize, Serialize};

/// A named crowdsourcing dataset: the collected answers and the reference
/// ground truth used to evaluate (and to simulate the validating expert).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    name: String,
    domain: String,
    answers: AnswerSet,
    ground_truth: GroundTruth,
}

impl Dataset {
    /// Builds a dataset, checking that the ground truth covers every object
    /// and only uses labels known to the answer set.
    pub fn new(
        name: impl Into<String>,
        domain: impl Into<String>,
        answers: AnswerSet,
        ground_truth: GroundTruth,
    ) -> Result<Self, ModelError> {
        if ground_truth.len() != answers.num_objects() {
            return Err(ModelError::DimensionMismatch {
                what: "ground truth",
                expected: answers.num_objects(),
                actual: ground_truth.len(),
            });
        }
        if let Some((_, bad)) = ground_truth
            .iter()
            .find(|(_, l)| l.index() >= answers.num_labels())
        {
            return Err(ModelError::LabelOutOfRange {
                label: bad.index(),
                num_labels: answers.num_labels(),
            });
        }
        Ok(Self {
            name: name.into(),
            domain: domain.into(),
            answers,
            ground_truth,
        })
    }

    /// Short dataset identifier (e.g. `"bb"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Application domain (e.g. `"Image tagging"`).
    pub fn domain(&self) -> &str {
        &self.domain
    }

    /// The crowd answers.
    pub fn answers(&self) -> &AnswerSet {
        &self.answers
    }

    /// Mutable access to the crowd answers (used when augmenting a dataset
    /// with additional crowd answers for the workers-only cost strategy).
    pub fn answers_mut(&mut self) -> &mut AnswerSet {
        &mut self.answers
    }

    /// The reference ground truth.
    pub fn ground_truth(&self) -> &GroundTruth {
        &self.ground_truth
    }

    /// Descriptive statistics in the shape of the paper's Table 4.
    pub fn stats(&self) -> DatasetStats {
        DatasetStats {
            name: self.name.clone(),
            domain: self.domain.clone(),
            objects: self.answers.num_objects(),
            workers: self.answers.num_workers(),
            labels: self.answers.num_labels(),
            answers: self.answers.matrix().num_answers(),
            density: self.answers.matrix().density(),
            answers_per_object: if self.answers.num_objects() == 0 {
                0.0
            } else {
                self.answers.matrix().num_answers() as f64 / self.answers.num_objects() as f64
            },
        }
    }
}

/// Summary statistics of a dataset (Table 4 row plus density figures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    pub name: String,
    pub domain: String,
    pub objects: usize,
    pub workers: usize,
    pub labels: usize,
    pub answers: usize,
    pub density: f64,
    pub answers_per_object: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LabelId, ObjectId, WorkerId};

    fn toy_answers() -> AnswerSet {
        let mut n = AnswerSet::new(2, 2, 2);
        n.record_answer(ObjectId(0), WorkerId(0), LabelId(0))
            .unwrap();
        n.record_answer(ObjectId(1), WorkerId(1), LabelId(1))
            .unwrap();
        n
    }

    #[test]
    fn dataset_construction_checks_ground_truth_length() {
        let err = Dataset::new(
            "t",
            "test",
            toy_answers(),
            GroundTruth::new(vec![LabelId(0)]),
        );
        assert!(matches!(err, Err(ModelError::DimensionMismatch { .. })));
    }

    #[test]
    fn dataset_construction_checks_label_range() {
        let err = Dataset::new(
            "t",
            "test",
            toy_answers(),
            GroundTruth::new(vec![LabelId(0), LabelId(9)]),
        );
        assert!(matches!(err, Err(ModelError::LabelOutOfRange { .. })));
    }

    #[test]
    fn stats_report_table4_columns() {
        let d = Dataset::new(
            "bb",
            "Image tagging",
            toy_answers(),
            GroundTruth::new(vec![LabelId(0), LabelId(1)]),
        )
        .unwrap();
        let s = d.stats();
        assert_eq!(s.name, "bb");
        assert_eq!(s.objects, 2);
        assert_eq!(s.workers, 2);
        assert_eq!(s.labels, 2);
        assert_eq!(s.answers, 2);
        assert!((s.density - 0.5).abs() < 1e-12);
        assert!((s.answers_per_object - 1.0).abs() < 1e-12);
    }
}
