//! The answer set `N = ⟨O, W, L, M⟩` (paper §3.1).

use crate::answer_matrix::AnswerMatrix;
use crate::error::ModelError;
use crate::ids::{LabelId, ObjectId, WorkerId};
use serde::{Deserialize, Serialize};

/// An answer set: objects, workers, labels, and the sparse answer matrix.
///
/// Objects, workers and labels are represented by their counts; ids are dense
/// indices into those ranges. Optional human-readable label names can be
/// attached for presentation (e.g. `"positive"` / `"negative"`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnswerSet {
    num_labels: usize,
    label_names: Vec<String>,
    matrix: AnswerMatrix,
}

impl AnswerSet {
    /// Creates an answer set with an empty answer matrix.
    ///
    /// # Panics
    /// Panics if `num_labels == 0`; a classification task needs at least one
    /// label.
    pub fn new(num_objects: usize, num_workers: usize, num_labels: usize) -> Self {
        assert!(num_labels > 0, "an answer set needs at least one label");
        Self {
            num_labels,
            label_names: (0..num_labels).map(|l| format!("label-{l}")).collect(),
            matrix: AnswerMatrix::new(num_objects, num_workers),
        }
    }

    /// Builds an answer set from an existing matrix.
    ///
    /// Fails if any answer in the matrix refers to a label outside
    /// `0..num_labels`.
    pub fn from_matrix(matrix: AnswerMatrix, num_labels: usize) -> Result<Self, ModelError> {
        if num_labels == 0 {
            return Err(ModelError::DimensionMismatch {
                what: "label count",
                expected: 1,
                actual: 0,
            });
        }
        if let Some(max_label) = matrix.max_label_index() {
            if max_label >= num_labels {
                return Err(ModelError::LabelOutOfRange {
                    label: max_label,
                    num_labels,
                });
            }
        }
        Ok(Self {
            num_labels,
            label_names: (0..num_labels).map(|l| format!("label-{l}")).collect(),
            matrix,
        })
    }

    /// Replaces the generated label names with domain-specific ones.
    pub fn with_label_names<S: Into<String>>(mut self, names: Vec<S>) -> Result<Self, ModelError> {
        if names.len() != self.num_labels {
            return Err(ModelError::DimensionMismatch {
                what: "label names",
                expected: self.num_labels,
                actual: names.len(),
            });
        }
        self.label_names = names.into_iter().map(Into::into).collect();
        Ok(self)
    }

    /// Number of objects `|O|`.
    pub fn num_objects(&self) -> usize {
        self.matrix.num_objects()
    }

    /// Number of workers `|W|`.
    pub fn num_workers(&self) -> usize {
        self.matrix.num_workers()
    }

    /// Number of labels `|L|`.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// Human-readable name of a label.
    pub fn label_name(&self, label: LabelId) -> &str {
        &self.label_names[label.index()]
    }

    /// The sparse answer matrix `M`.
    pub fn matrix(&self) -> &AnswerMatrix {
        &self.matrix
    }

    /// Records worker `w`'s answer for object `o`, validating the label range.
    pub fn record_answer(
        &mut self,
        object: ObjectId,
        worker: WorkerId,
        label: LabelId,
    ) -> Result<(), ModelError> {
        if label.index() >= self.num_labels {
            return Err(ModelError::LabelOutOfRange {
                label: label.index(),
                num_labels: self.num_labels,
            });
        }
        self.matrix.set_answer(object, worker, label)
    }

    /// Records a streaming vote, growing the object/worker id spaces on
    /// demand (the label space is fixed at construction — a classification
    /// task does not sprout new classes mid-stream). This is the ingestion
    /// entry point of the validation session: unlike
    /// [`AnswerSet::record_answer`], out-of-range object and worker ids mean
    /// *new arrivals*, not errors.
    pub fn record_arrival(&mut self, vote: crate::vote::Vote) -> Result<(), ModelError> {
        if vote.label.index() >= self.num_labels {
            return Err(ModelError::LabelOutOfRange {
                label: vote.label.index(),
                num_labels: self.num_labels,
            });
        }
        self.matrix.ensure_shape(
            self.matrix.num_objects().max(vote.object.index() + 1),
            self.matrix.num_workers().max(vote.worker.index() + 1),
        );
        self.matrix.set_answer(vote.object, vote.worker, vote.label)
    }

    /// Grows the object/worker id spaces (no-op when already large enough).
    pub fn ensure_shape(&mut self, num_objects: usize, num_workers: usize) {
        self.matrix.ensure_shape(num_objects, num_workers);
    }

    /// Reserves matrix capacity for roughly `additional` more answers
    /// (ingest-batch hint; see [`AnswerMatrix::reserve_answers`]).
    pub fn reserve_answers(&mut self, additional: usize) {
        self.matrix.reserve_answers(additional);
    }

    /// Patches the matrix's compact CSR mirrors back in sync with the paged
    /// arenas (see [`AnswerMatrix::sync_compact_views`]). Call at
    /// ingest-batch boundaries so the EM kernels stream flat rows.
    pub fn sync_compact_views(&mut self) {
        self.matrix.sync_compact_views();
    }

    /// Enables or disables the compact CSR mirrors (see
    /// [`AnswerMatrix::set_compact_enabled`]). Mainly for benchmarks and
    /// equivalence tests that A/B the paged-only path.
    pub fn set_compact_enabled(&mut self, enabled: bool) {
        self.matrix.set_compact_enabled(enabled);
    }

    /// Removes worker `w`'s answer for object `o`, returning the label if an
    /// answer was present.
    pub fn remove_answer(&mut self, object: ObjectId, worker: WorkerId) -> Option<LabelId> {
        self.matrix.remove_answer(object, worker)
    }

    /// Iterator over all object ids.
    pub fn objects(&self) -> impl Iterator<Item = ObjectId> {
        (0..self.num_objects()).map(ObjectId)
    }

    /// Iterator over all worker ids.
    pub fn workers(&self) -> impl Iterator<Item = WorkerId> {
        (0..self.num_workers()).map(WorkerId)
    }

    /// Iterator over all label ids.
    pub fn labels(&self) -> impl Iterator<Item = LabelId> {
        (0..self.num_labels()).map(LabelId)
    }

    /// Returns a copy of this answer set with every answer of the given
    /// workers hidden behind the tombstone mask, used when suspected faulty
    /// workers are excluded from aggregation (§5.3). One matrix copy total —
    /// each exclusion is a mask flip, not an answer-by-answer removal.
    pub fn excluding_workers(&self, excluded: &[WorkerId]) -> AnswerSet {
        let mut matrix = self.matrix.clone();
        for &w in excluded {
            matrix.set_worker_excluded(w, true);
        }
        AnswerSet {
            num_labels: self.num_labels,
            label_names: self.label_names.clone(),
            matrix,
        }
    }

    /// Replaces the set of tombstoned workers in place: workers in `excluded`
    /// are hidden from iteration, everyone else is visible. `O(workers)` mask
    /// diff, no matrix copy — the streaming session uses this to track
    /// detection outcomes without rebuilding its active view.
    pub fn set_excluded_workers(&mut self, excluded: &[WorkerId]) {
        for w in 0..self.num_workers() {
            let worker = WorkerId(w);
            self.matrix
                .set_worker_excluded(worker, excluded.contains(&worker));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> AnswerSet {
        let mut n = AnswerSet::new(4, 3, 2);
        n.record_answer(ObjectId(0), WorkerId(0), LabelId(0))
            .unwrap();
        n.record_answer(ObjectId(0), WorkerId(1), LabelId(1))
            .unwrap();
        n.record_answer(ObjectId(1), WorkerId(2), LabelId(1))
            .unwrap();
        n.record_answer(ObjectId(3), WorkerId(0), LabelId(0))
            .unwrap();
        n
    }

    #[test]
    fn dimensions_are_exposed() {
        let n = toy();
        assert_eq!(n.num_objects(), 4);
        assert_eq!(n.num_workers(), 3);
        assert_eq!(n.num_labels(), 2);
        assert_eq!(n.objects().count(), 4);
        assert_eq!(n.workers().count(), 3);
        assert_eq!(n.labels().count(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn zero_labels_is_rejected() {
        AnswerSet::new(1, 1, 0);
    }

    #[test]
    fn record_answer_validates_label_range() {
        let mut n = AnswerSet::new(2, 2, 2);
        assert!(matches!(
            n.record_answer(ObjectId(0), WorkerId(0), LabelId(5)),
            Err(ModelError::LabelOutOfRange { .. })
        ));
    }

    #[test]
    fn from_matrix_checks_label_consistency() {
        let mut m = AnswerMatrix::new(2, 2);
        m.set_answer(ObjectId(0), WorkerId(0), LabelId(3)).unwrap();
        assert!(AnswerSet::from_matrix(m.clone(), 2).is_err());
        assert!(AnswerSet::from_matrix(m, 4).is_ok());
    }

    #[test]
    fn label_names_can_be_customized() {
        let n = toy().with_label_names(vec!["neg", "pos"]).unwrap();
        assert_eq!(n.label_name(LabelId(1)), "pos");
        assert!(toy().with_label_names(vec!["only-one"]).is_err());
    }

    #[test]
    fn excluding_workers_drops_their_answers_only() {
        let n = toy();
        let pruned = n.excluding_workers(&[WorkerId(0)]);
        assert_eq!(pruned.matrix().num_answers(), 2);
        assert_eq!(pruned.matrix().worker_answer_count(WorkerId(0)), 0);
        assert_eq!(n.matrix().num_answers(), 4);
    }
}
