//! Plain-text CSV interchange format for datasets.
//!
//! Two simple files describe a dataset:
//!
//! * **answers CSV** — header `object,worker,label`, one row per crowd answer;
//! * **ground-truth CSV** — header `object,label`, one row per object.
//!
//! Indices are dense, zero-based integers. The format intentionally matches
//! how the public crowdsourcing benchmark datasets (bluebird, rte, …) are
//! usually distributed, so real data can be dropped in for the bundled
//! replicas without code changes.

use crate::answer_matrix::AnswerMatrix;
use crate::answer_set::AnswerSet;
use crate::dataset::Dataset;
use crate::error::ModelError;
use crate::ground_truth::GroundTruth;
use crate::ids::{LabelId, ObjectId, WorkerId};
use std::fs;
use std::path::Path;

/// Serializes the answer matrix of an answer set as `object,worker,label`
/// CSV.
pub fn answers_to_csv(answers: &AnswerSet) -> String {
    let mut out = String::from("object,worker,label\n");
    for (o, w, l) in answers.matrix().iter() {
        out.push_str(&format!("{},{},{}\n", o.index(), w.index(), l.index()));
    }
    out
}

/// Serializes a ground truth as `object,label` CSV.
pub fn ground_truth_to_csv(truth: &GroundTruth) -> String {
    let mut out = String::from("object,label\n");
    for (o, l) in truth.iter() {
        out.push_str(&format!("{},{}\n", o.index(), l.index()));
    }
    out
}

/// Parses `object,worker,label` CSV into an answer set.
///
/// Dimensions are inferred from the largest indices seen; `num_labels` can be
/// forced when some labels never occur in the answers.
pub fn answers_from_csv(csv: &str, num_labels: Option<usize>) -> Result<AnswerSet, ModelError> {
    let mut triples = Vec::new();
    let mut max_object = 0usize;
    let mut max_worker = 0usize;
    let mut max_label = 0usize;
    for (idx, line) in csv.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (idx == 0 && line.starts_with("object")) || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 3 {
            return Err(ModelError::Parse {
                line: idx + 1,
                message: format!("expected 3 comma-separated fields, got {}", fields.len()),
            });
        }
        let parse = |s: &str, what: &str| -> Result<usize, ModelError> {
            s.parse::<usize>().map_err(|_| ModelError::Parse {
                line: idx + 1,
                message: format!("invalid {what} index {s:?}"),
            })
        };
        let o = parse(fields[0], "object")?;
        let w = parse(fields[1], "worker")?;
        let l = parse(fields[2], "label")?;
        max_object = max_object.max(o);
        max_worker = max_worker.max(w);
        max_label = max_label.max(l);
        triples.push((o, w, l));
    }
    if triples.is_empty() {
        return Err(ModelError::Parse {
            line: 0,
            message: "no answer rows found".into(),
        });
    }
    let labels = num_labels.unwrap_or(max_label + 1).max(max_label + 1);
    let mut matrix = AnswerMatrix::new(max_object + 1, max_worker + 1);
    for (o, w, l) in triples {
        matrix.set_answer(ObjectId(o), WorkerId(w), LabelId(l))?;
    }
    AnswerSet::from_matrix(matrix, labels)
}

/// Parses `object,label` CSV into a ground truth covering `num_objects`
/// objects. Every object must appear exactly once.
pub fn ground_truth_from_csv(csv: &str, num_objects: usize) -> Result<GroundTruth, ModelError> {
    let mut labels: Vec<Option<LabelId>> = vec![None; num_objects];
    for (idx, line) in csv.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (idx == 0 && line.starts_with("object")) || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 2 {
            return Err(ModelError::Parse {
                line: idx + 1,
                message: format!("expected 2 comma-separated fields, got {}", fields.len()),
            });
        }
        let o: usize = fields[0].parse().map_err(|_| ModelError::Parse {
            line: idx + 1,
            message: format!("invalid object index {:?}", fields[0]),
        })?;
        let l: usize = fields[1].parse().map_err(|_| ModelError::Parse {
            line: idx + 1,
            message: format!("invalid label index {:?}", fields[1]),
        })?;
        if o >= num_objects {
            return Err(ModelError::ObjectOutOfRange {
                object: o,
                num_objects,
            });
        }
        labels[o] = Some(LabelId(l));
    }
    let labels: Result<Vec<LabelId>, ModelError> = labels
        .into_iter()
        .enumerate()
        .map(|(o, l)| {
            l.ok_or(ModelError::DimensionMismatch {
                what: "ground truth (missing object)",
                expected: num_objects,
                actual: o,
            })
        })
        .collect();
    Ok(GroundTruth::new(labels?))
}

/// Writes a dataset as `<stem>.answers.csv` and `<stem>.truth.csv` next to
/// each other.
pub fn write_dataset(dataset: &Dataset, dir: &Path) -> Result<(), ModelError> {
    fs::create_dir_all(dir)?;
    let answers_path = dir.join(format!("{}.answers.csv", dataset.name()));
    let truth_path = dir.join(format!("{}.truth.csv", dataset.name()));
    fs::write(answers_path, answers_to_csv(dataset.answers()))?;
    fs::write(truth_path, ground_truth_to_csv(dataset.ground_truth()))?;
    Ok(())
}

/// Reads a dataset previously written by [`write_dataset`].
pub fn read_dataset(
    name: &str,
    domain: &str,
    dir: &Path,
    num_labels: Option<usize>,
) -> Result<Dataset, ModelError> {
    let answers_csv = fs::read_to_string(dir.join(format!("{name}.answers.csv")))?;
    let truth_csv = fs::read_to_string(dir.join(format!("{name}.truth.csv")))?;
    let answers = answers_from_csv(&answers_csv, num_labels)?;
    let truth = ground_truth_from_csv(&truth_csv, answers.num_objects())?;
    Dataset::new(name, domain, answers, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        let mut answers = AnswerSet::new(3, 2, 2);
        answers
            .record_answer(ObjectId(0), WorkerId(0), LabelId(0))
            .unwrap();
        answers
            .record_answer(ObjectId(1), WorkerId(0), LabelId(1))
            .unwrap();
        answers
            .record_answer(ObjectId(1), WorkerId(1), LabelId(1))
            .unwrap();
        answers
            .record_answer(ObjectId(2), WorkerId(1), LabelId(0))
            .unwrap();
        let truth = GroundTruth::new(vec![LabelId(0), LabelId(1), LabelId(0)]);
        Dataset::new("toy", "unit-test", answers, truth).unwrap()
    }

    #[test]
    fn answers_round_trip_through_csv() {
        let d = toy_dataset();
        let csv = answers_to_csv(d.answers());
        let parsed = answers_from_csv(&csv, Some(2)).unwrap();
        assert_eq!(parsed.matrix().num_answers(), 4);
        assert_eq!(
            parsed.matrix().answer(ObjectId(1), WorkerId(1)),
            Some(LabelId(1))
        );
        assert_eq!(parsed.num_labels(), 2);
    }

    #[test]
    fn ground_truth_round_trips_through_csv() {
        let d = toy_dataset();
        let csv = ground_truth_to_csv(d.ground_truth());
        let parsed = ground_truth_from_csv(&csv, 3).unwrap();
        assert_eq!(parsed, *d.ground_truth());
    }

    #[test]
    fn malformed_rows_are_reported_with_line_numbers() {
        let err = answers_from_csv("object,worker,label\n0,1\n", None).unwrap_err();
        assert!(matches!(err, ModelError::Parse { line: 2, .. }));
        let err = answers_from_csv("object,worker,label\n0,x,1\n", None).unwrap_err();
        assert!(matches!(err, ModelError::Parse { line: 2, .. }));
        let err = answers_from_csv("object,worker,label\n", None).unwrap_err();
        assert!(matches!(err, ModelError::Parse { .. }));
    }

    #[test]
    fn ground_truth_missing_object_is_rejected() {
        let err = ground_truth_from_csv("object,label\n0,1\n", 2).unwrap_err();
        assert!(matches!(err, ModelError::DimensionMismatch { .. }));
        let err = ground_truth_from_csv("object,label\n7,1\n", 2).unwrap_err();
        assert!(matches!(err, ModelError::ObjectOutOfRange { .. }));
    }

    #[test]
    fn dataset_round_trips_through_files() {
        let d = toy_dataset();
        let dir = std::env::temp_dir().join(format!("crowdval-io-test-{}", std::process::id()));
        write_dataset(&d, &dir).unwrap();
        let loaded = read_dataset("toy", "unit-test", &dir, Some(2)).unwrap();
        assert_eq!(loaded.answers().matrix().num_answers(), 4);
        assert_eq!(loaded.ground_truth(), d.ground_truth());
        std::fs::remove_dir_all(dir).ok();
    }
}
