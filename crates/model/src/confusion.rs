//! Worker confusion matrices `F_w` (paper §3.1).
//!
//! `F_w(l, l')` is the probability that worker `w` answers `l'` when the true
//! label is `l`. Rows therefore form probability distributions over the
//! answered label. Confusion matrices are estimated either by the EM
//! aggregation (from soft label assignments) or directly from expert
//! validations (for spammer detection, §5.3).

use crate::ids::LabelId;
use crowdval_numerics::Matrix;
use serde::{Deserialize, Serialize};

/// A `labels × labels` row-stochastic confusion matrix for one worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    matrix: Matrix,
}

impl ConfusionMatrix {
    /// A maximally uninformative confusion matrix: every row is uniform.
    pub fn uniform(num_labels: usize) -> Self {
        assert!(num_labels > 0, "confusion matrix needs at least one label");
        Self {
            matrix: Matrix::filled(num_labels, num_labels, 1.0 / num_labels as f64),
        }
    }

    /// The confusion matrix of a perfectly reliable worker (identity).
    pub fn identity(num_labels: usize) -> Self {
        assert!(num_labels > 0, "confusion matrix needs at least one label");
        Self {
            matrix: Matrix::identity(num_labels),
        }
    }

    /// A diagonally dominant matrix where the worker answers correctly with
    /// probability `accuracy` and spreads the remaining mass uniformly over
    /// the wrong labels. With a single label this is the identity.
    pub fn diagonal(num_labels: usize, accuracy: f64) -> Self {
        assert!(num_labels > 0, "confusion matrix needs at least one label");
        let accuracy = accuracy.clamp(0.0, 1.0);
        let off = if num_labels > 1 {
            (1.0 - accuracy) / (num_labels - 1) as f64
        } else {
            0.0
        };
        let mut m = Matrix::filled(num_labels, num_labels, off);
        for l in 0..num_labels {
            m[(l, l)] = if num_labels > 1 { accuracy } else { 1.0 };
        }
        Self { matrix: m }
    }

    /// Builds a confusion matrix from raw co-occurrence counts
    /// (`counts[(true, answered)]`), applying Laplace smoothing `alpha` before
    /// row normalization. Rows with no observations become uniform.
    pub fn from_counts(counts: &Matrix, alpha: f64) -> Self {
        assert_eq!(
            counts.rows(),
            counts.cols(),
            "confusion counts must be square"
        );
        let mut m = counts.clone();
        if alpha > 0.0 {
            m.add_scalar(alpha);
        }
        m.normalize_rows();
        Self { matrix: m }
    }

    /// Wraps an already row-stochastic matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square or not row-stochastic (within 1e-6).
    pub fn from_matrix(matrix: Matrix) -> Self {
        assert_eq!(
            matrix.rows(),
            matrix.cols(),
            "confusion matrix must be square"
        );
        assert!(
            matrix.is_row_stochastic(1e-6),
            "confusion matrix rows must be probability distributions"
        );
        Self { matrix }
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.matrix.rows()
    }

    /// `P(answer = answered | truth = true_label)`.
    pub fn prob(&self, true_label: LabelId, answered: LabelId) -> f64 {
        self.matrix[(true_label.index(), answered.index())]
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Mutable access to the underlying matrix for in-place estimation.
    pub fn matrix_mut(&mut self) -> &mut Matrix {
        &mut self.matrix
    }

    /// Probability of a correct answer averaged over true labels weighted by
    /// `priors`: `Σ_l priors[l] · F(l, l)`.
    pub fn weighted_accuracy(&self, priors: &[f64]) -> f64 {
        assert_eq!(
            priors.len(),
            self.num_labels(),
            "prior length must match label count"
        );
        (0..self.num_labels())
            .map(|l| priors[l] * self.matrix[(l, l)])
            .sum()
    }

    /// Error rate `e_w`: the prior-weighted off-diagonal mass (§5.3,
    /// sloppy-worker detection). Equals `1 − weighted_accuracy` for proper
    /// priors.
    pub fn error_rate(&self, priors: &[f64]) -> f64 {
        assert_eq!(
            priors.len(),
            self.num_labels(),
            "prior length must match label count"
        );
        let mut err = 0.0;
        for (l, &prior) in priors.iter().enumerate() {
            for l2 in 0..self.num_labels() {
                if l != l2 {
                    err += prior * self.matrix[(l, l2)];
                }
            }
        }
        err
    }

    /// Largest absolute entry-wise difference to another confusion matrix;
    /// used as the EM convergence criterion.
    pub fn max_abs_diff(&self, other: &ConfusionMatrix) -> f64 {
        self.matrix.max_abs_diff(&other.matrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_identity_shapes() {
        let u = ConfusionMatrix::uniform(3);
        assert_eq!(u.num_labels(), 3);
        assert!((u.prob(LabelId(0), LabelId(2)) - 1.0 / 3.0).abs() < 1e-12);
        let i = ConfusionMatrix::identity(2);
        assert_eq!(i.prob(LabelId(0), LabelId(0)), 1.0);
        assert_eq!(i.prob(LabelId(0), LabelId(1)), 0.0);
    }

    #[test]
    fn diagonal_matrix_splits_error_mass() {
        let c = ConfusionMatrix::diagonal(3, 0.7);
        assert!((c.prob(LabelId(1), LabelId(1)) - 0.7).abs() < 1e-12);
        assert!((c.prob(LabelId(1), LabelId(0)) - 0.15).abs() < 1e-12);
        assert!(c.matrix().is_row_stochastic(1e-9));
        // single-label degenerate case
        let c1 = ConfusionMatrix::diagonal(1, 0.3);
        assert_eq!(c1.prob(LabelId(0), LabelId(0)), 1.0);
    }

    #[test]
    fn from_counts_normalizes_and_smooths() {
        let counts = Matrix::from_rows(&[vec![3.0, 1.0], vec![0.0, 0.0]]);
        let c = ConfusionMatrix::from_counts(&counts, 0.0);
        assert!((c.prob(LabelId(0), LabelId(0)) - 0.75).abs() < 1e-12);
        // empty row becomes uniform
        assert!((c.prob(LabelId(1), LabelId(0)) - 0.5).abs() < 1e-12);

        let smoothed = ConfusionMatrix::from_counts(&counts, 1.0);
        assert!((smoothed.prob(LabelId(0), LabelId(0)) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "probability distributions")]
    fn from_matrix_rejects_non_stochastic_rows() {
        ConfusionMatrix::from_matrix(Matrix::from_rows(&[vec![0.2, 0.2], vec![0.5, 0.5]]));
    }

    #[test]
    fn weighted_accuracy_and_error_rate_are_complementary() {
        let c = ConfusionMatrix::diagonal(2, 0.8);
        let priors = [0.5, 0.5];
        let acc = c.weighted_accuracy(&priors);
        let err = c.error_rate(&priors);
        assert!((acc - 0.8).abs() < 1e-12);
        assert!((acc + err - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_abs_diff_detects_changes() {
        let a = ConfusionMatrix::diagonal(2, 0.9);
        let b = ConfusionMatrix::diagonal(2, 0.8);
        assert!((a.max_abs_diff(&b) - 0.1).abs() < 1e-12);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
