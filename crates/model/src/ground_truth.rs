//! Ground-truth label assignments and the precision metrics derived from them
//! (paper §6.1, "Metrics").

use crate::assignment::DeterministicAssignment;
use crate::ids::{LabelId, ObjectId};
use serde::{Deserialize, Serialize};

/// The correct assignment `g : O → L` used to evaluate result correctness and
/// to simulate the validating expert.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruth {
    labels: Vec<LabelId>,
}

impl GroundTruth {
    /// Wraps a per-object vector of correct labels.
    pub fn new(labels: Vec<LabelId>) -> Self {
        Self { labels }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when there are no objects.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The correct label of `object`.
    pub fn label(&self, object: ObjectId) -> LabelId {
        self.labels[object.index()]
    }

    /// Largest label index appearing in the truth, or `None` when empty.
    /// Lets builders validate label-space consistency up front instead of
    /// failing deep inside the first aggregation.
    pub fn max_label_index(&self) -> Option<usize> {
        self.labels.iter().map(|l| l.index()).max()
    }

    /// Iterator over `(object, correct label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, LabelId)> + '_ {
        self.labels
            .iter()
            .enumerate()
            .map(|(o, &l)| (ObjectId(o), l))
    }

    /// Precision `P_i` of a deterministic assignment: fraction of objects
    /// whose assigned label matches the ground truth.
    pub fn precision(&self, assignment: &DeterministicAssignment) -> f64 {
        assert_eq!(
            assignment.len(),
            self.labels.len(),
            "assignment must cover the same objects as the ground truth"
        );
        if self.labels.is_empty() {
            return 1.0;
        }
        let correct = self
            .labels
            .iter()
            .enumerate()
            .filter(|(o, &g)| assignment.label(ObjectId(*o)) == g)
            .count();
        correct as f64 / self.labels.len() as f64
    }

    /// Precision of a deterministic assignment that covers only a *prefix*
    /// of the ground truth's objects — the streaming-session case, where the
    /// reference truth spans the full eventual object set while the session
    /// has only seen part of the stream. Equals [`GroundTruth::precision`]
    /// when the assignment covers every object.
    ///
    /// # Panics
    /// Panics if the assignment covers *more* objects than the ground truth.
    pub fn prefix_precision(&self, assignment: &DeterministicAssignment) -> f64 {
        assert!(
            assignment.len() <= self.labels.len(),
            "assignment covers objects beyond the ground truth"
        );
        if assignment.is_empty() {
            return 1.0;
        }
        let correct = (0..assignment.len())
            .filter(|&o| assignment.label(ObjectId(o)) == self.labels[o])
            .count();
        correct as f64 / assignment.len() as f64
    }

    /// Percentage-of-precision-improvement `R_i = (P_i − P_0) / (1 − P_0)`
    /// (paper §6.1). When the initial precision is already perfect the
    /// improvement is defined as 1 if precision stayed perfect, 0 otherwise.
    pub fn precision_improvement(initial: f64, current: f64) -> f64 {
        if (1.0 - initial).abs() < f64::EPSILON {
            if (1.0 - current).abs() < f64::EPSILON {
                1.0
            } else {
                0.0
            }
        } else {
            (current - initial) / (1.0 - initial)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        GroundTruth::new(vec![LabelId(0), LabelId(1), LabelId(1), LabelId(0)])
    }

    #[test]
    fn precision_counts_matches() {
        let g = truth();
        let d = DeterministicAssignment::new(vec![LabelId(0), LabelId(1), LabelId(0), LabelId(0)]);
        assert!((g.precision(&d) - 0.75).abs() < 1e-12);
        let perfect = DeterministicAssignment::new(g.iter().map(|(_, l)| l).collect());
        assert_eq!(g.precision(&perfect), 1.0);
    }

    #[test]
    fn empty_ground_truth_has_perfect_precision() {
        let g = GroundTruth::new(vec![]);
        assert!(g.is_empty());
        assert_eq!(g.precision(&DeterministicAssignment::new(vec![])), 1.0);
    }

    #[test]
    #[should_panic(expected = "same objects")]
    fn precision_requires_matching_lengths() {
        truth().precision(&DeterministicAssignment::new(vec![LabelId(0)]));
    }

    #[test]
    fn precision_improvement_normalizes_gains() {
        let r = GroundTruth::precision_improvement(0.8, 0.9);
        assert!((r - 0.5).abs() < 1e-12);
        assert_eq!(GroundTruth::precision_improvement(0.8, 0.8), 0.0);
        assert_eq!(GroundTruth::precision_improvement(1.0, 1.0), 1.0);
        assert_eq!(GroundTruth::precision_improvement(1.0, 0.9), 0.0);
    }

    #[test]
    fn accessors() {
        let g = truth();
        assert_eq!(g.len(), 4);
        assert_eq!(g.label(ObjectId(2)), LabelId(1));
        assert_eq!(g.iter().count(), 4);
    }
}
