//! Error type shared by the model crate's constructors and the CSV codec.

use std::fmt;

/// Errors raised while building or parsing crowdsourcing data structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An object index was outside the answer set's object range.
    ObjectOutOfRange { object: usize, num_objects: usize },
    /// A worker index was outside the answer set's worker range.
    WorkerOutOfRange { worker: usize, num_workers: usize },
    /// A label index was outside the answer set's label range.
    LabelOutOfRange { label: usize, num_labels: usize },
    /// A dataset component had an inconsistent size.
    DimensionMismatch {
        what: &'static str,
        expected: usize,
        actual: usize,
    },
    /// A line of CSV input could not be parsed.
    Parse { line: usize, message: String },
    /// An I/O error while reading or writing dataset files.
    Io(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ObjectOutOfRange {
                object,
                num_objects,
            } => {
                write!(
                    f,
                    "object index {object} out of range (dataset has {num_objects} objects)"
                )
            }
            ModelError::WorkerOutOfRange {
                worker,
                num_workers,
            } => {
                write!(
                    f,
                    "worker index {worker} out of range (dataset has {num_workers} workers)"
                )
            }
            ModelError::LabelOutOfRange { label, num_labels } => {
                write!(
                    f,
                    "label index {label} out of range (dataset has {num_labels} labels)"
                )
            }
            ModelError::DimensionMismatch {
                what,
                expected,
                actual,
            } => {
                write!(f, "{what}: expected {expected} entries, got {actual}")
            }
            ModelError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            ModelError::Io(message) => write!(f, "I/O error: {message}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<std::io::Error> for ModelError {
    fn from(err: std::io::Error) -> Self {
        ModelError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = ModelError::ObjectOutOfRange {
            object: 9,
            num_objects: 5,
        };
        assert!(e.to_string().contains("object index 9"));
        let e = ModelError::Parse {
            line: 3,
            message: "bad label".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = ModelError::DimensionMismatch {
            what: "ground truth",
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("ground truth"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: ModelError = io.into();
        assert!(matches!(e, ModelError::Io(_)));
    }
}
