//! Error type shared by the model crate's constructors and the CSV codec.

use std::fmt;

/// Errors raised while building or parsing crowdsourcing data structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// An object index was outside the answer set's object range.
    ObjectOutOfRange { object: usize, num_objects: usize },
    /// A worker index was outside the answer set's worker range.
    WorkerOutOfRange { worker: usize, num_workers: usize },
    /// A label index was outside the answer set's label range.
    LabelOutOfRange { label: usize, num_labels: usize },
    /// A dataset component had an inconsistent size.
    DimensionMismatch {
        what: &'static str,
        expected: usize,
        actual: usize,
    },
    /// A line of CSV input could not be parsed.
    Parse { line: usize, message: String },
    /// An I/O error while reading or writing dataset files.
    Io(String),
    /// An external string id was registered twice in an [`crate::IdInterner`]
    /// namespace that requires distinct names (e.g. a task's label set).
    DuplicateId { id: String },
    /// A component (a custom aggregator or selection strategy) does not
    /// support state snapshots, so the owning session cannot be checkpointed.
    SnapshotUnsupported { component: &'static str },
    /// A snapshot's parts disagree with each other (e.g. a posterior whose
    /// shape does not match the answer set it claims to describe).
    InvalidSnapshot { message: String },
    /// A run-time configuration is internally inconsistent (e.g. a target
    /// precision outside `[0, 1]`), caught at build time instead of failing
    /// deep inside the first aggregation.
    InvalidConfig { message: String },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::ObjectOutOfRange {
                object,
                num_objects,
            } => {
                write!(
                    f,
                    "object index {object} out of range (dataset has {num_objects} objects)"
                )
            }
            ModelError::WorkerOutOfRange {
                worker,
                num_workers,
            } => {
                write!(
                    f,
                    "worker index {worker} out of range (dataset has {num_workers} workers)"
                )
            }
            ModelError::LabelOutOfRange { label, num_labels } => {
                write!(
                    f,
                    "label index {label} out of range (dataset has {num_labels} labels)"
                )
            }
            ModelError::DimensionMismatch {
                what,
                expected,
                actual,
            } => {
                write!(f, "{what}: expected {expected} entries, got {actual}")
            }
            ModelError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            ModelError::Io(message) => write!(f, "I/O error: {message}"),
            ModelError::DuplicateId { id } => {
                write!(f, "duplicate external id {id:?}")
            }
            ModelError::SnapshotUnsupported { component } => {
                write!(
                    f,
                    "component {component:?} does not support state snapshots"
                )
            }
            ModelError::InvalidSnapshot { message } => {
                write!(f, "invalid snapshot: {message}")
            }
            ModelError::InvalidConfig { message } => {
                write!(f, "invalid configuration: {message}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

impl From<std::io::Error> for ModelError {
    fn from(err: std::io::Error) -> Self {
        ModelError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = ModelError::ObjectOutOfRange {
            object: 9,
            num_objects: 5,
        };
        assert!(e.to_string().contains("object index 9"));
        let e = ModelError::Parse {
            line: 3,
            message: "bad label".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = ModelError::DimensionMismatch {
            what: "ground truth",
            expected: 4,
            actual: 2,
        };
        assert!(e.to_string().contains("ground truth"));
    }

    #[test]
    fn io_errors_convert() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: ModelError = io.into();
        assert!(matches!(e, ModelError::Io(_)));
    }
}
