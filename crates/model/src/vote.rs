//! A single crowd vote in flight (§3 / §5.4 view maintenance).
//!
//! The batch pipeline receives an [`crate::AnswerSet`] that was fully built
//! before validation starts. The streaming ingestion path instead receives
//! votes *while* the expert validates; a [`Vote`] is the unit of that stream.
//! Object and worker ids beyond the current answer-set bounds denote new
//! arrivals (a fresh question entering the task, a new worker joining the
//! crowd) and grow the id spaces on ingestion
//! ([`crate::AnswerSet::record_arrival`]).

use crate::ids::{LabelId, ObjectId, WorkerId};
use serde::{Deserialize, Serialize};

/// One `(object, worker, label)` answer arriving from the crowd.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vote {
    /// The object (question) the vote is about; may be a new object.
    pub object: ObjectId,
    /// The worker who cast the vote; may be a new worker.
    pub worker: WorkerId,
    /// The label the worker chose.
    pub label: LabelId,
}

impl Vote {
    /// Convenience constructor.
    pub fn new(object: ObjectId, worker: WorkerId, label: LabelId) -> Self {
        Self {
            object,
            worker,
            label,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vote_round_trips_through_serde() {
        let v = Vote::new(ObjectId(3), WorkerId(1), LabelId(0));
        let restored = Vote::from_value(&v.to_value()).unwrap();
        assert_eq!(v, restored);
    }
}
