//! Compact (CSR-style) adjacency views over the paged arenas.
//!
//! The paged arena in [`crate::answer_matrix`] is the *authoritative* store:
//! appends are O(1) amortized, removals recycle chunks, and rows never move
//! each other around. Its weakness is traversal at scale — every row walk
//! chases a chunk chain whose pages land wherever arrival order put them, so
//! a million-object E-step pays a cache miss per 8-entry chunk plus the
//! chain metadata on every page.
//!
//! [`CompactAdjacency`] is a *derived*, flat mirror of one paged view: one
//! `(id, label)` pair slab plus a `(start, len, cap)` row table, exactly the
//! CSR layout the EM kernels want to stream. It is maintained incrementally:
//!
//! - **Dirty tracking** — every mutation of a paged row marks the mirror row
//!   dirty; a dirty row answers [`CompactAdjacency::row_slice`] with `None`
//!   so readers fall back to the (always-correct) chunk chain.
//! - **Batch patch** — [`CompactAdjacency::sync`] rewrites each dirty row
//!   *from the paged chain*, in chain order, so the mirror is
//!   entry-for-entry identical to the arena by construction (bitwise
//!   identity of any float work that streams either view). Rows that
//!   outgrow their capacity relocate to the slab tail with 1.5x slack.
//! - **Rebuild on garbage** — relocation strands dead capacity; once the
//!   slab holds more than twice the live pairs (the corpus-doubling rhythm
//!   of a streaming session) the whole view is repacked in row order, which
//!   also restores perfect row-major locality for sequential scans.
//!
//! The mirror never serializes: snapshots persist the paged arenas (whose
//! within-row order is the format contract) and a restored matrix starts
//! with every non-empty row dirty, to be patched on the next sync.

use crate::answer_matrix::PagedAdjacency;

/// Extra slab slack (in pairs) tolerated before a garbage-triggered rebuild;
/// keeps tiny matrices from rebuilding on every sync.
const REBUILD_SLACK: usize = 1024;

/// One row of the compact mirror: a `[start, start + len)` window of the
/// pair slab, with `cap` pairs reserved from `start`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompactRow {
    start: u32,
    len: u32,
    cap: u32,
}

impl CompactRow {
    const EMPTY: CompactRow = CompactRow {
        start: 0,
        len: 0,
        cap: 0,
    };
}

/// A flat CSR mirror of one [`PagedAdjacency`] view. See the module docs for
/// the maintenance contract.
#[derive(Debug, Clone, Default)]
pub(crate) struct CompactAdjacency {
    rows: Vec<CompactRow>,
    /// The pair slab. `rows` windows index into this; slots outside every
    /// window are garbage awaiting the next rebuild.
    pairs: Vec<(u32, u32)>,
    /// Live pairs across all rows (slab length minus garbage and slack).
    live: usize,
    /// Rows whose mirror is stale; `dirty_rows` lists them, `dirty` flags
    /// them for O(1) membership checks.
    dirty_rows: Vec<u32>,
    dirty: Vec<bool>,
}

impl CompactAdjacency {
    pub(crate) fn with_rows(rows: usize) -> Self {
        Self {
            rows: vec![CompactRow::EMPTY; rows],
            pairs: Vec::new(),
            live: 0,
            dirty_rows: Vec::new(),
            dirty: vec![false; rows],
        }
    }

    /// A mirror for an already-populated arena with every non-empty row
    /// dirty — the deserialization path.
    pub(crate) fn stale_for(paged: &PagedAdjacency) -> Self {
        let mut mirror = Self::with_rows(paged.num_rows());
        for row in 0..paged.num_rows() {
            if paged.row_len(row) > 0 {
                mirror.dirty[row] = true;
                mirror.dirty_rows.push(row as u32);
            }
        }
        mirror
    }

    pub(crate) fn ensure_rows(&mut self, rows: usize) {
        if rows > self.rows.len() {
            self.rows.resize(rows, CompactRow::EMPTY);
            self.dirty.resize(rows, false);
        }
    }

    /// Marks one row stale. O(1); idempotent.
    #[inline]
    pub(crate) fn mark_dirty(&mut self, row: usize) {
        if let Some(flag) = self.dirty.get_mut(row) {
            if !*flag {
                *flag = true;
                self.dirty_rows.push(row as u32);
            }
        }
    }

    /// The row's flat pair window, or `None` while the row is stale (readers
    /// must fall back to the paged chain).
    #[inline]
    pub(crate) fn row_slice(&self, row: usize) -> Option<&[(u32, u32)]> {
        if *self.dirty.get(row)? {
            return None;
        }
        let r = self.rows[row];
        Some(&self.pairs[r.start as usize..(r.start + r.len) as usize])
    }

    pub(crate) fn has_dirty_rows(&self) -> bool {
        !self.dirty_rows.is_empty()
    }

    /// Reserves slab capacity for `additional` pairs (ingest-batch hint).
    pub(crate) fn reserve_pairs(&mut self, additional: usize) {
        self.pairs.reserve(additional);
    }

    /// Patches every dirty row from the authoritative arena, then rebuilds
    /// the whole slab if relocation garbage exceeds the live pair count.
    pub(crate) fn sync(&mut self, paged: &PagedAdjacency) {
        if self.dirty_rows.is_empty() {
            return;
        }
        let mut dirty_rows = std::mem::take(&mut self.dirty_rows);
        for &row in &dirty_rows {
            let row = row as usize;
            self.dirty[row] = false;
            let new_len = paged.row_len(row);
            let old = self.rows[row];
            self.live = self.live + new_len - old.len as usize;
            if new_len as u32 <= old.cap {
                // Rewrite in place (chain order — the identity contract).
                let start = old.start as usize;
                for (slot, pair) in self.pairs[start..start + new_len]
                    .iter_mut()
                    .zip(paged.row_pairs(row))
                {
                    *slot = pair;
                }
                self.rows[row].len = new_len as u32;
            } else {
                // Relocate to the slab tail with 1.5x slack; the old window
                // becomes garbage until the next rebuild.
                let cap = new_len + new_len / 2;
                let start = self.pairs.len();
                self.pairs.extend(paged.row_pairs(row));
                self.pairs.resize(start + cap, (0, 0));
                self.rows[row] = CompactRow {
                    start: start as u32,
                    len: new_len as u32,
                    cap: cap as u32,
                };
            }
        }
        dirty_rows.clear();
        self.dirty_rows = dirty_rows;
        if self.pairs.len() > 2 * self.live + REBUILD_SLACK {
            self.rebuild(paged);
        }
    }

    /// Repacks the slab tightly in row order (restores sequential-scan
    /// locality and drops relocation garbage). All rows must be clean.
    fn rebuild(&mut self, paged: &PagedAdjacency) {
        let mut pairs = Vec::with_capacity(self.live);
        for row in 0..self.rows.len() {
            let start = pairs.len();
            pairs.extend(paged.row_pairs(row));
            let len = (pairs.len() - start) as u32;
            self.rows[row] = CompactRow {
                start: start as u32,
                len,
                cap: len,
            };
        }
        self.live = pairs.len();
        self.pairs = pairs;
    }

    /// Heap bytes held by the mirror (capacities, not lengths).
    pub(crate) fn heap_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<CompactRow>()
            + self.pairs.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.dirty_rows.capacity() * std::mem::size_of::<u32>()
            + self.dirty.capacity() * std::mem::size_of::<bool>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paged_with(rows: usize, votes: &[(usize, u32, u32)]) -> PagedAdjacency {
        let mut paged = PagedAdjacency::with_rows(rows);
        for &(row, id, label) in votes {
            paged.set(row, id, label);
        }
        paged
    }

    fn assert_mirrors(mirror: &CompactAdjacency, paged: &PagedAdjacency) {
        for row in 0..paged.num_rows() {
            let flat: Vec<_> = mirror
                .row_slice(row)
                .expect("row should be clean after sync")
                .to_vec();
            let chain: Vec<_> = paged.row_pairs(row).collect();
            assert_eq!(flat, chain, "row {row} diverged from the arena");
        }
    }

    #[test]
    fn dirty_rows_fall_back_until_synced() {
        let paged = paged_with(2, &[(0, 7, 1), (0, 8, 0)]);
        let mut mirror = CompactAdjacency::with_rows(2);
        mirror.mark_dirty(0);
        assert!(mirror.row_slice(0).is_none());
        assert_eq!(mirror.row_slice(1), Some(&[][..]));
        mirror.sync(&paged);
        assert_mirrors(&mirror, &paged);
    }

    #[test]
    fn in_place_patch_and_relocation() {
        let mut paged = paged_with(3, &[(1, 0, 0)]);
        let mut mirror = CompactAdjacency::stale_for(&paged);
        mirror.sync(&paged);
        assert_mirrors(&mirror, &paged);
        // Overwrite in place: same length, new label.
        paged.set(1, 0, 9);
        mirror.mark_dirty(1);
        mirror.sync(&paged);
        assert_mirrors(&mirror, &paged);
        // Grow past capacity: relocation.
        for id in 1..40 {
            paged.set(1, id, id % 3);
            mirror.mark_dirty(1);
        }
        mirror.sync(&paged);
        assert_mirrors(&mirror, &paged);
    }

    #[test]
    fn shrinking_rows_patch_in_place() {
        let mut paged = paged_with(1, &[(0, 0, 0), (0, 1, 1), (0, 2, 0)]);
        let mut mirror = CompactAdjacency::stale_for(&paged);
        mirror.sync(&paged);
        paged.remove(0, 1);
        mirror.mark_dirty(0);
        mirror.sync(&paged);
        assert_mirrors(&mirror, &paged);
        assert_eq!(mirror.live, 2);
    }

    #[test]
    fn garbage_triggers_a_tight_rebuild() {
        // Grow one row repeatedly so relocation strands enough garbage to
        // cross the 2x-live threshold (REBUILD_SLACK forces a large corpus).
        let mut paged = PagedAdjacency::with_rows(4);
        let mut mirror = CompactAdjacency::with_rows(4);
        let mut id = 0u32;
        for round in 0..14 {
            for _ in 0..(1 << round.min(10)) {
                paged.set(0, id, 0);
                id += 1;
            }
            mirror.mark_dirty(0);
            mirror.sync(&paged);
        }
        assert_mirrors(&mirror, &paged);
        // After a rebuild the slab is tight: no more than live + one row's
        // relocation slack.
        assert!(
            mirror.pairs.len() <= 2 * mirror.live + REBUILD_SLACK,
            "slab {} vs live {}",
            mirror.pairs.len(),
            mirror.live
        );
    }

    #[test]
    fn ensure_rows_keeps_new_rows_clean_and_empty() {
        let paged = paged_with(1, &[(0, 0, 0)]);
        let mut mirror = CompactAdjacency::stale_for(&paged);
        mirror.sync(&paged);
        mirror.ensure_rows(5);
        assert_eq!(mirror.row_slice(4), Some(&[][..]));
        assert_mirrors(&mirror, &paged);
    }

    #[test]
    fn heap_bytes_counts_slab_and_tables() {
        let paged = paged_with(2, &[(0, 0, 0), (1, 1, 1)]);
        let mut mirror = CompactAdjacency::stale_for(&paged);
        mirror.sync(&paged);
        assert!(mirror.heap_bytes() >= 2 * std::mem::size_of::<CompactRow>());
    }
}
