//! Probabilistic assignment matrix `U` and deterministic assignment `d`
//! (paper §3.1).
//!
//! `U(o, l)` is the probability that label `l` is correct for object `o`;
//! every row is a probability distribution. The deterministic assignment picks
//! one label per object — the framework's *Instantiation* component selects
//! the most probable label (§3.2).

use crate::ids::{LabelId, ObjectId};
use crowdval_numerics::{shannon_entropy, Matrix};
use serde::{Deserialize, Serialize};

/// Probabilistic label assignment: an `objects × labels` row-stochastic
/// matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentMatrix {
    matrix: Matrix,
}

impl AssignmentMatrix {
    /// Creates the maximally uncertain assignment: every object gets the
    /// uniform distribution over labels.
    pub fn uniform(num_objects: usize, num_labels: usize) -> Self {
        assert!(num_labels > 0, "assignment matrix needs at least one label");
        Self {
            matrix: Matrix::filled(num_objects, num_labels, 1.0 / num_labels as f64),
        }
    }

    /// Wraps a matrix, normalizing each row so it forms a distribution.
    pub fn from_matrix(mut matrix: Matrix) -> Self {
        matrix.normalize_rows();
        Self { matrix }
    }

    /// Wraps a matrix whose rows are already probability distributions,
    /// without re-normalizing. Used by the EM workspace, whose E-step
    /// normalizes rows in place: re-normalizing here would divide by a
    /// float sum ≈ 1.0 and perturb the converged values.
    ///
    /// # Panics
    /// Debug-panics if the matrix is not row-stochastic (within 1e-6).
    pub fn from_normalized(matrix: Matrix) -> Self {
        debug_assert!(
            matrix.is_row_stochastic(1e-6),
            "from_normalized requires row-stochastic input"
        );
        Self { matrix }
    }

    /// Number of objects.
    pub fn num_objects(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of labels.
    pub fn num_labels(&self) -> usize {
        self.matrix.cols()
    }

    /// `P(correct label of o is l)`.
    pub fn prob(&self, object: ObjectId, label: LabelId) -> f64 {
        self.matrix[(object.index(), label.index())]
    }

    /// The full label distribution of one object.
    pub fn distribution(&self, object: ObjectId) -> &[f64] {
        self.matrix.row(object.index())
    }

    /// Overwrites the distribution of one object.
    ///
    /// # Panics
    /// Panics if `probs.len()` differs from the label count.
    pub fn set_distribution(&mut self, object: ObjectId, probs: &[f64]) {
        assert_eq!(
            probs.len(),
            self.num_labels(),
            "distribution length must match label count"
        );
        self.matrix.row_mut(object.index()).copy_from_slice(probs);
    }

    /// Sets the distribution of `object` to the point mass on `label`, as
    /// done for objects with an expert validation (Eq. 4).
    pub fn set_certain(&mut self, object: ObjectId, label: LabelId) {
        let row = self.matrix.row_mut(object.index());
        for v in row.iter_mut() {
            *v = 0.0;
        }
        row[label.index()] = 1.0;
    }

    /// The most probable label of an object and its probability. Ties break
    /// toward the smaller label index for determinism.
    pub fn most_likely(&self, object: ObjectId) -> (LabelId, f64) {
        let row = self.distribution(object);
        let mut best = 0;
        let mut best_p = row[0];
        for (l, &p) in row.iter().enumerate().skip(1) {
            if p > best_p {
                best = l;
                best_p = p;
            }
        }
        (LabelId(best), best_p)
    }

    /// Shannon entropy `H(o)` of one object's label distribution (Eq. 6).
    pub fn object_entropy(&self, object: ObjectId) -> f64 {
        shannon_entropy(self.distribution(object))
    }

    /// Total uncertainty `H(P) = Σ_o H(o)` of the assignment (Eq. 7).
    pub fn total_entropy(&self) -> f64 {
        (0..self.num_objects())
            .map(|o| self.object_entropy(ObjectId(o)))
            .sum()
    }

    /// Prior probability of each label: the column means of `U` (Eq. 3).
    pub fn label_priors(&self) -> Vec<f64> {
        let n = self.num_objects();
        if n == 0 {
            return vec![1.0 / self.num_labels() as f64; self.num_labels()];
        }
        (0..self.num_labels())
            .map(|l| self.matrix.col_sum(l) / n as f64)
            .collect()
    }

    /// The deterministic assignment obtained by picking the most probable
    /// label of every object (the *filter* step of the validation process).
    pub fn instantiate(&self) -> DeterministicAssignment {
        DeterministicAssignment::new(
            (0..self.num_objects())
                .map(|o| self.most_likely(ObjectId(o)).0)
                .collect(),
        )
    }

    /// Largest absolute entry-wise difference to another assignment matrix.
    pub fn max_abs_diff(&self, other: &AssignmentMatrix) -> f64 {
        self.matrix.max_abs_diff(&other.matrix)
    }

    /// The underlying matrix.
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }
}

/// A deterministic label assignment `d : O → L` — the final crowdsourcing
/// result handed to applications.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DeterministicAssignment {
    labels: Vec<LabelId>,
}

impl DeterministicAssignment {
    /// Wraps a per-object label vector.
    pub fn new(labels: Vec<LabelId>) -> Self {
        Self { labels }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when there are no objects.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Label assigned to `object`.
    pub fn label(&self, object: ObjectId) -> LabelId {
        self.labels[object.index()]
    }

    /// Overwrites the label of one object (used to pin expert validations).
    pub fn set_label(&mut self, object: ObjectId, label: LabelId) {
        self.labels[object.index()] = label;
    }

    /// Iterator over `(object, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, LabelId)> + '_ {
        self.labels
            .iter()
            .enumerate()
            .map(|(o, &l)| (ObjectId(o), l))
    }

    /// Fraction of objects on which two assignments agree.
    pub fn agreement(&self, other: &DeterministicAssignment) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "assignments must cover the same objects"
        );
        if self.labels.is_empty() {
            return 1.0;
        }
        let same = self
            .labels
            .iter()
            .zip(&other.labels)
            .filter(|(a, b)| a == b)
            .count();
        same as f64 / self.labels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_assignment_has_maximum_entropy() {
        let u = AssignmentMatrix::uniform(3, 2);
        assert_eq!(u.num_objects(), 3);
        assert_eq!(u.num_labels(), 2);
        assert!((u.total_entropy() - 3.0 * 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn from_matrix_normalizes_rows() {
        let m = Matrix::from_rows(&[vec![2.0, 2.0], vec![3.0, 1.0]]);
        let u = AssignmentMatrix::from_matrix(m);
        assert!((u.prob(ObjectId(1), LabelId(0)) - 0.75).abs() < 1e-12);
        assert!(u.matrix().is_row_stochastic(1e-9));
    }

    #[test]
    fn set_certain_creates_point_mass_with_zero_entropy() {
        let mut u = AssignmentMatrix::uniform(2, 3);
        u.set_certain(ObjectId(1), LabelId(2));
        assert_eq!(u.prob(ObjectId(1), LabelId(2)), 1.0);
        assert_eq!(u.object_entropy(ObjectId(1)), 0.0);
        assert_eq!(u.most_likely(ObjectId(1)), (LabelId(2), 1.0));
    }

    #[test]
    fn most_likely_breaks_ties_deterministically() {
        let u = AssignmentMatrix::uniform(1, 4);
        assert_eq!(u.most_likely(ObjectId(0)).0, LabelId(0));
    }

    #[test]
    fn label_priors_are_column_means() {
        let mut u = AssignmentMatrix::uniform(2, 2);
        u.set_certain(ObjectId(0), LabelId(0));
        u.set_certain(ObjectId(1), LabelId(1));
        let p = u.label_priors();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn instantiate_picks_argmax_labels() {
        let m = Matrix::from_rows(&[vec![0.9, 0.1], vec![0.3, 0.7]]);
        let d = AssignmentMatrix::from_matrix(m).instantiate();
        assert_eq!(d.label(ObjectId(0)), LabelId(0));
        assert_eq!(d.label(ObjectId(1)), LabelId(1));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn set_distribution_replaces_row() {
        let mut u = AssignmentMatrix::uniform(1, 2);
        u.set_distribution(ObjectId(0), &[0.2, 0.8]);
        assert_eq!(u.distribution(ObjectId(0)), &[0.2, 0.8]);
    }

    #[test]
    fn deterministic_assignment_agreement() {
        let a = DeterministicAssignment::new(vec![LabelId(0), LabelId(1), LabelId(1)]);
        let mut b = a.clone();
        assert_eq!(a.agreement(&b), 1.0);
        b.set_label(ObjectId(0), LabelId(1));
        assert!((a.agreement(&b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(b.iter().count(), 3);
        assert!(!b.is_empty());
    }
}
