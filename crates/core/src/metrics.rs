//! Validation traces and evaluation metrics (paper §6.1).
//!
//! Every iteration of the validation process appends a [`ValidationStep`] to
//! a [`ValidationTrace`]. The trace is the raw material of all figures in the
//! evaluation: relative expert effort `E_i = i / n`, precision `P_i`,
//! percentage of precision improvement `R_i = (P_i − P_0) / (1 − P_0)` and the
//! uncertainty of the probabilistic answer set.

use crate::guidance_cache::GuidanceTelemetry;
use crate::strategy::StrategyKind;
use crowdval_model::{GroundTruth, LabelId, ObjectId};
use serde::{Deserialize, Serialize};

/// One iteration of the validation process.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationStep {
    /// 1-based iteration number `i`.
    pub iteration: usize,
    /// The object the expert was asked about.
    pub object: ObjectId,
    /// The label the expert provided.
    pub label: LabelId,
    /// Which strategy variant made the selection.
    pub strategy: StrategyKind,
    /// Uncertainty `H(P)` *after* integrating the validation.
    pub uncertainty: f64,
    /// Precision of the deterministic assignment after the validation, when a
    /// reference ground truth is available.
    pub precision: Option<f64>,
    /// Error rate `ε_i = 1 − U_{i−1}(o, l)` of the previous estimate on the
    /// validated object.
    pub error_rate: f64,
    /// Number of workers currently excluded as suspected faulty.
    pub excluded_workers: usize,
    /// EM iterations spent in this step's aggregation.
    pub em_iterations: usize,
    /// Guidance telemetry of the selection that led to this validation:
    /// candidates evaluated exactly vs served from the cross-step score
    /// cache, and the hypothesis EM iterations the selection spent (zeros
    /// when the cache is disabled or no selection preceded the step).
    pub guidance: GuidanceTelemetry,
}

/// The full history of a validation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ValidationTrace {
    /// Number of objects in the dataset (denominator of the effort metric).
    pub num_objects: usize,
    /// Uncertainty before any validation.
    pub initial_uncertainty: f64,
    /// Precision before any validation (when a ground truth is available).
    pub initial_precision: Option<f64>,
    /// Per-iteration records.
    pub steps: Vec<ValidationStep>,
}

impl ValidationTrace {
    /// Creates an empty trace.
    pub fn new(
        num_objects: usize,
        initial_uncertainty: f64,
        initial_precision: Option<f64>,
    ) -> Self {
        Self {
            num_objects,
            initial_uncertainty,
            initial_precision,
            steps: Vec::new(),
        }
    }

    /// Number of validations performed.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when no validation has happened yet.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Relative expert effort `E_i = i / n` after the last step.
    pub fn effort(&self) -> f64 {
        if self.num_objects == 0 {
            0.0
        } else {
            self.steps.len() as f64 / self.num_objects as f64
        }
    }

    /// Precision after the last step (falls back to the initial precision).
    pub fn final_precision(&self) -> Option<f64> {
        self.steps
            .last()
            .map_or(self.initial_precision, |s| s.precision)
    }

    /// Uncertainty after the last step (falls back to the initial value).
    pub fn final_uncertainty(&self) -> f64 {
        self.steps
            .last()
            .map_or(self.initial_uncertainty, |s| s.uncertainty)
    }

    /// Precision measured right after the validation effort first reached the
    /// given fraction (`0.0 ..= 1.0`); the initial precision for effort 0.
    pub fn precision_at_effort(&self, effort: f64) -> Option<f64> {
        if effort <= 0.0 || self.steps.is_empty() {
            return self.initial_precision;
        }
        let needed = (effort * self.num_objects as f64).ceil() as usize;
        if needed == 0 {
            return self.initial_precision;
        }
        let idx = needed.min(self.steps.len()) - 1;
        self.steps[idx].precision.or(self.initial_precision)
    }

    /// Percentage of precision improvement `R_i` after the last step, in
    /// `[0, 1]` (paper reports it in percent).
    pub fn precision_improvement(&self) -> Option<f64> {
        let p0 = self.initial_precision?;
        let p = self.final_precision()?;
        Some(GroundTruth::precision_improvement(p0, p))
    }

    /// Precision improvement at a given effort fraction.
    pub fn precision_improvement_at_effort(&self, effort: f64) -> Option<f64> {
        let p0 = self.initial_precision?;
        let p = self.precision_at_effort(effort)?;
        Some(GroundTruth::precision_improvement(p0, p))
    }

    /// Smallest relative effort at which the precision reached `target`, or
    /// `None` if it never did. Effort 0 is reported when the initial
    /// precision already meets the target.
    pub fn effort_to_reach_precision(&self, target: f64) -> Option<f64> {
        if self.initial_precision.is_some_and(|p| p >= target) {
            return Some(0.0);
        }
        self.steps
            .iter()
            .find(|s| s.precision.is_some_and(|p| p >= target))
            .map(|s| s.iteration as f64 / self.num_objects.max(1) as f64)
    }

    /// The `(effort, precision)` series used to plot the Fig. 10-style curves.
    pub fn precision_series(&self) -> Vec<(f64, f64)> {
        let mut series = Vec::with_capacity(self.steps.len() + 1);
        if let Some(p0) = self.initial_precision {
            series.push((0.0, p0));
        }
        for s in &self.steps {
            if let Some(p) = s.precision {
                series.push((s.iteration as f64 / self.num_objects.max(1) as f64, p));
            }
        }
        series
    }

    /// The `(precision, uncertainty)` pairs used for the correlation study of
    /// Appendix B (Fig. 15).
    pub fn precision_uncertainty_pairs(&self) -> Vec<(f64, f64)> {
        let mut pairs = Vec::new();
        if let Some(p0) = self.initial_precision {
            pairs.push((p0, self.initial_uncertainty));
        }
        for s in &self.steps {
            if let Some(p) = s.precision {
                pairs.push((p, s.uncertainty));
            }
        }
        pairs
    }

    /// Total EM iterations spent over the whole run (Fig. 8 compares this
    /// between i-EM and restarted EM).
    pub fn total_em_iterations(&self) -> usize {
        self.steps.iter().map(|s| s.em_iterations).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(i: usize, precision: f64, uncertainty: f64) -> ValidationStep {
        ValidationStep {
            iteration: i,
            object: ObjectId(i - 1),
            label: LabelId(0),
            strategy: StrategyKind::Hybrid,
            uncertainty,
            precision: Some(precision),
            error_rate: 0.1,
            excluded_workers: 0,
            em_iterations: 3,
            guidance: GuidanceTelemetry::default(),
        }
    }

    fn trace() -> ValidationTrace {
        let mut t = ValidationTrace::new(10, 5.0, Some(0.8));
        t.steps.push(step(1, 0.82, 4.0));
        t.steps.push(step(2, 0.9, 2.5));
        t.steps.push(step(3, 1.0, 1.0));
        t
    }

    #[test]
    fn effort_and_final_metrics() {
        let t = trace();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert!((t.effort() - 0.3).abs() < 1e-12);
        assert_eq!(t.final_precision(), Some(1.0));
        assert_eq!(t.final_uncertainty(), 1.0);
        assert_eq!(t.total_em_iterations(), 9);
    }

    #[test]
    fn precision_at_effort_interpolates_on_steps() {
        let t = trace();
        assert_eq!(t.precision_at_effort(0.0), Some(0.8));
        assert_eq!(t.precision_at_effort(0.1), Some(0.82));
        assert_eq!(t.precision_at_effort(0.2), Some(0.9));
        assert_eq!(t.precision_at_effort(0.25), Some(1.0));
        // Beyond the recorded steps the last value holds.
        assert_eq!(t.precision_at_effort(0.9), Some(1.0));
    }

    #[test]
    fn improvement_is_normalized() {
        let t = trace();
        assert!((t.precision_improvement().unwrap() - 1.0).abs() < 1e-12);
        assert!((t.precision_improvement_at_effort(0.2).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn effort_to_reach_precision() {
        let t = trace();
        assert_eq!(t.effort_to_reach_precision(0.8), Some(0.0));
        assert_eq!(t.effort_to_reach_precision(0.9), Some(0.2));
        assert_eq!(t.effort_to_reach_precision(1.0), Some(0.3));
        let empty = ValidationTrace::new(10, 5.0, Some(0.5));
        assert_eq!(empty.effort_to_reach_precision(0.9), None);
    }

    #[test]
    fn series_include_the_initial_point() {
        let t = trace();
        let series = t.precision_series();
        assert_eq!(series[0], (0.0, 0.8));
        assert_eq!(series.len(), 4);
        let pairs = t.precision_uncertainty_pairs();
        assert_eq!(pairs[0], (0.8, 5.0));
        assert_eq!(pairs.len(), 4);
    }

    #[test]
    fn empty_trace_defaults() {
        let t = ValidationTrace::new(0, 0.0, None);
        assert_eq!(t.effort(), 0.0);
        assert_eq!(t.final_precision(), None);
        assert_eq!(t.precision_improvement(), None);
        assert!(t.precision_series().is_empty());
    }
}
