//! Sparse answer-matrix partitioning (paper §5.4, "Sparse matrix
//! partitioning").
//!
//! Workers only answer a limited number of questions, so a large answer
//! matrix is sparse. To keep the per-iteration computations (and the blocks
//! shown to a human) small, the paper reorders the matrix into dense
//! sub-blocks using a graph partitioner (METIS). We implement the same idea
//! from scratch: objects are greedily clustered along the bipartite
//! object–worker answer graph, so that objects in one block share as many
//! workers as possible, and each block is capped at a maximum size.

use crowdval_model::{AnswerSet, ObjectId, WorkerId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, BinaryHeap};

/// One block of the partition: a set of objects plus the workers that
/// answered them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Objects in this block, in insertion order.
    pub objects: Vec<ObjectId>,
    /// Workers with at least one answer on a block object, sorted by id.
    pub workers: Vec<WorkerId>,
}

impl Block {
    /// Density of the block's sub-matrix: answers present over
    /// `objects × workers` cells.
    pub fn density(&self, answers: &AnswerSet) -> f64 {
        if self.objects.is_empty() || self.workers.is_empty() {
            return 0.0;
        }
        let workers: BTreeSet<WorkerId> = self.workers.iter().copied().collect();
        let mut filled = 0usize;
        for &o in &self.objects {
            filled += answers
                .matrix()
                .answers_for_object(o)
                .filter(|(w, _)| workers.contains(w))
                .count();
        }
        filled as f64 / (self.objects.len() * self.workers.len()) as f64
    }
}

/// Result of partitioning an answer matrix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    pub blocks: Vec<Block>,
}

impl Partition {
    /// Total number of objects covered by the partition.
    pub fn num_objects(&self) -> usize {
        self.blocks.iter().map(|b| b.objects.len()).sum()
    }

    /// Largest block size.
    pub fn max_block_size(&self) -> usize {
        self.blocks
            .iter()
            .map(|b| b.objects.len())
            .max()
            .unwrap_or(0)
    }
}

/// Greedily partitions the objects of an answer set into blocks of at most
/// `max_block_size` objects, preferring to group objects that share workers.
///
/// The algorithm keeps a frontier of objects adjacent (via shared workers) to
/// the current block and always pulls the object with the largest overlap,
/// falling back to an arbitrary unassigned object when the frontier dries up.
/// Every object ends up in exactly one block.
pub fn partition_answer_matrix(answers: &AnswerSet, max_block_size: usize) -> Partition {
    assert!(max_block_size > 0, "blocks must hold at least one object");
    let n = answers.num_objects();
    let mut assigned = vec![false; n];
    let mut blocks = Vec::new();

    for start in 0..n {
        if assigned[start] {
            continue;
        }
        let mut block_objects = Vec::with_capacity(max_block_size);
        let mut block_workers: BTreeSet<WorkerId> = BTreeSet::new();
        // Max-heap of (shared-worker count, object) candidates.
        let mut frontier: BinaryHeap<(usize, usize)> = BinaryHeap::new();
        frontier.push((0, start));

        while block_objects.len() < max_block_size {
            // Pull the best unassigned frontier object; recompute its overlap
            // because the block has grown since it was pushed.
            let candidate = loop {
                match frontier.pop() {
                    Some((_, o)) if assigned[o] => continue,
                    Some((_, o)) => break Some(o),
                    None => break None,
                }
            };
            let Some(o) = candidate else { break };
            assigned[o] = true;
            let object = ObjectId(o);
            block_objects.push(object);
            for (w, _) in answers.matrix().answers_for_object(object) {
                // Expand the frontier with the objects this worker answered.
                if block_workers.insert(w) {
                    for (other, _) in answers.matrix().answers_for_worker(w) {
                        if !assigned[other.index()] {
                            let overlap = shared_workers(answers, other, &block_workers);
                            frontier.push((overlap, other.index()));
                        }
                    }
                }
            }
        }
        blocks.push(Block {
            objects: block_objects,
            workers: block_workers.into_iter().collect(),
        });
    }
    Partition { blocks }
}

fn shared_workers(answers: &AnswerSet, object: ObjectId, workers: &BTreeSet<WorkerId>) -> usize {
    answers
        .matrix()
        .answers_for_object(object)
        .filter(|(w, _)| workers.contains(w))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_model::LabelId;

    /// Two disjoint communities of workers/objects plus one bridging object.
    fn two_communities() -> AnswerSet {
        let mut n = AnswerSet::new(9, 6, 2);
        // Community A: objects 0..4 answered by workers 0..2.
        for o in 0..4 {
            for w in 0..3 {
                n.record_answer(ObjectId(o), WorkerId(w), LabelId(0))
                    .unwrap();
            }
        }
        // Community B: objects 4..8 answered by workers 3..5.
        for o in 4..8 {
            for w in 3..6 {
                n.record_answer(ObjectId(o), WorkerId(w), LabelId(1))
                    .unwrap();
            }
        }
        // Bridge: object 8 answered by one worker from each side.
        n.record_answer(ObjectId(8), WorkerId(0), LabelId(0))
            .unwrap();
        n.record_answer(ObjectId(8), WorkerId(3), LabelId(0))
            .unwrap();
        n
    }

    #[test]
    fn every_object_lands_in_exactly_one_block() {
        let answers = two_communities();
        let p = partition_answer_matrix(&answers, 4);
        assert_eq!(p.num_objects(), 9);
        let mut seen = vec![false; 9];
        for block in &p.blocks {
            for o in &block.objects {
                assert!(!seen[o.index()], "object {o} assigned twice");
                seen[o.index()] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
        assert!(p.max_block_size() <= 4);
    }

    #[test]
    fn blocks_follow_worker_communities() {
        let answers = two_communities();
        let p = partition_answer_matrix(&answers, 4);
        // The first block grown from object 0 should contain only community-A
        // objects (0..4) because they share workers.
        let first = &p.blocks[0];
        assert!(first.objects.iter().all(|o| o.index() < 4));
        // Blocks over a single community are dense.
        assert!(first.density(&answers) > 0.9);
    }

    #[test]
    fn blocks_respect_the_size_cap() {
        let answers = two_communities();
        for cap in [1, 2, 3, 5] {
            let p = partition_answer_matrix(&answers, cap);
            assert!(p.max_block_size() <= cap, "cap {cap}");
            assert_eq!(p.num_objects(), 9);
        }
    }

    #[test]
    fn empty_matrix_partitions_into_singletons() {
        let answers = AnswerSet::new(3, 2, 2);
        let p = partition_answer_matrix(&answers, 2);
        assert_eq!(p.num_objects(), 3);
        for block in &p.blocks {
            assert!(block.workers.is_empty());
            assert_eq!(block.density(&answers), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn zero_block_size_is_rejected() {
        partition_answer_matrix(&AnswerSet::new(1, 1, 2), 0);
    }
}
