//! Cross-step guidance score caching with dirty-region invalidation
//! (paper §5.4, the view-maintenance principle applied **across** selection
//! steps).
//!
//! Every selection step of the validation loop re-scores a shortlist of
//! candidate objects, and each score costs one warm-started hypothesis EM
//! run per plausible label. Between two consecutive selection steps, however,
//! only one validation (and at most one arrival batch) changed the model —
//! the same observation that made the *within*-run delta path of
//! [`crowdval_aggregation::delta`] pay off. A [`GuidanceCache`] therefore
//! retains per-candidate scores across steps and invalidates them by **dirty
//! region**: the session feeds it the converged dirty frontier of each
//! re-aggregation (the rows that moved beyond the EM tolerance, via
//! [`crowdval_aggregation::Aggregator::conclude_arrival_tracked`] /
//! [`crowdval_aggregation::Aggregator::drift_tolerance`]), and only
//! candidates inside that region lose their entry.
//!
//! On top of the cache sits **lazy bound-based selection** (the CELF idea
//! from submodular maximization, echoed by CDAS-style early pruning of
//! quality estimates): a retained score from an earlier step is treated as
//! an *upper bound* on the candidate's current score — information gain has
//! diminishing returns as validations accumulate — so the selection loop
//! re-evaluates candidates in descending stale-bound order and stops as soon
//! as the best freshly evaluated score strictly dominates the next stale
//! bound (see [`stale_bound_margin`]). Three properties keep this exact rather
//! than approximate:
//!
//! 1. **The winner is always a fresh score.** Stale values only order the
//!    evaluation and justify skipping; the returned argmax is computed from
//!    scores evaluated against the *current* state, with the same
//!    NaN-as-`-∞` and smaller-id tie-breaks as the eager path.
//! 2. **Invalidation is conservative.** Whenever the session cannot bound
//!    what a state change did — corpus growth, the per-doubling cold
//!    re-anchor, worker-exclusion flips, a revalidation, an uncertainty
//!    *increase*, or an aggregator without a drift bound — it invalidates
//!    globally and the next selection degenerates to a full re-score pass.
//! 3. **Exactness on miss.** A missing entry is always evaluated, never
//!    estimated — which is also why dropping the cache on snapshot and
//!    rebuilding it lazily on restore cannot change behaviour: the first
//!    post-restore selection is a full re-score whose winner is the same
//!    exact argmax.
//!
//! Expected-detection scores (§5.3) ride in a second family of the same
//! cache. Their evidence base — the per-worker validation confusion — shifts
//! globally with every validation and every arrival, so the session
//! invalidates the detection family on any such event; detection entries
//! only short-circuit repeated guidance requests against an unchanged state
//! (the service-polling pattern).

use crowdval_model::ObjectId;
use serde::{Deserialize, Serialize};

/// Assignment-row drift below which a re-aggregation does **not** drop a
/// retained guidance score: the dirty region is the set of rows that moved
/// beyond this threshold (plus the objects whose vote sets changed). Rows
/// drifting less than this perturb a candidate's information gain by far
/// less than the [`stale_bound_margin`] slack — a binary row's entropy moves at
/// most ~`ln((1−p)/p) · Δp` per probability step — so the retained value
/// stays a safe upper bound for the lazy loop. Coarser than the EM
/// convergence tolerance on purpose: near-chance crowds jiggle most rows by
/// a few `1e-3` per validation without reordering the candidates.
pub const GUIDANCE_DRIFT_THRESHOLD: f64 = 1e-2;

/// Baseline of the per-state-change stale-bound slack, as a fraction of
/// the last observed best score: an entry that is `age` state changes old
/// is treated as the bound `value + age · margin` with
/// `margin = (RELATIVE_DRIFT_MARGIN + DRIFT_MARGIN_PER_OBJECT / N) ·
/// last_best`. Score drift between selection steps scales with the score
/// scale itself, and each validation perturbs a small corpus by a larger
/// fraction of its model — measured on the paper-default stream, the
/// per-step drift of non-invalidated candidates stays under ~7 % of the
/// running best at 150 objects and ~21 % on a 60-object corpus, and the
/// combined `0.1 + 8/N` slack (~15 % at 150, ~23 % at 60) keeps about a 2x
/// factor over every observed drift while shrinking in absolute terms as
/// validation settles the corpus and the gains decay. Aging also
/// self-limits staleness: an entry skipped for many steps grows a bound
/// the current best can no longer dominate and is re-evaluated. The
/// selection-order property test hammers exactly this threshold/margin
/// combination across random streaming scenarios.
pub const RELATIVE_DRIFT_MARGIN: f64 = 0.06;

/// The `1/N` part of the relative drift slack (see
/// [`RELATIVE_DRIFT_MARGIN`]).
pub const DRIFT_MARGIN_PER_OBJECT: f64 = 10.0;

/// Absolute floor of the per-state-change slack (degenerate corpora whose
/// best gain is ~0 still get a nonzero drift allowance).
pub const ABSOLUTE_DRIFT_FLOOR: f64 = 1e-3;

/// Which score family an entry belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScoreFamily {
    /// Information gain `IG(o)` (Eq. 9) — the uncertainty-driven strategy.
    InformationGain,
    /// Expected spammer detections `R(W | o)` (Eq. 13) — the worker-driven
    /// strategy.
    Detections,
}

/// What one lazy selection step did: how many candidates were evaluated
/// exactly, how many were served from the cache (skipped via a dominated
/// stale bound or reused at an unchanged version), and how many hypothesis
/// EM iterations the exact evaluations spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GuidanceTelemetry {
    /// Candidates whose score was computed exactly this step.
    pub evaluated: usize,
    /// Candidates whose evaluation was skipped — their cached score either
    /// proved they cannot win (dominated stale bound) or was exact already
    /// (no state change since it was computed).
    pub served_from_cache: usize,
    /// Hypothesis EM iterations spent by this step's exact evaluations.
    pub em_iterations: usize,
}

impl GuidanceTelemetry {
    /// Accumulates another step's counters into this one.
    pub fn absorb(&mut self, other: &GuidanceTelemetry) {
        self.evaluated += other.evaluated;
        self.served_from_cache += other.served_from_cache;
        self.em_iterations += other.em_iterations;
    }

    /// Fraction of candidate evaluations served from the cache, in `[0, 1]`
    /// (`0` when nothing was scored yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.evaluated + self.served_from_cache;
        if total == 0 {
            0.0
        } else {
            self.served_from_cache as f64 / total as f64
        }
    }
}

/// One retained score: the value and the cache version it was computed at.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    value: f64,
    version: u64,
}

/// The state a lookup found for a candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CachedScore {
    /// No entry (never scored, or invalidated): must be evaluated.
    Miss,
    /// Scored `age ≥ 1` state changes ago: usable only as the upper bound
    /// `value + age · stale_bound_margin(N)`.
    Stale { value: f64, age: u64 },
    /// Scored at the current version: bitwise the value an evaluation
    /// against the current state would produce.
    Exact(f64),
}

/// Per-candidate guidance scores retained across selection steps, tagged
/// with a corpus version and invalidated by dirty region. See the module
/// docs for the exactness argument.
#[derive(Debug, Clone, Default)]
pub struct GuidanceCache {
    /// Bumped on every state change the session observes (arrival batch,
    /// integrated validation, exclusion flip, …). Entries carrying an older
    /// version are stale; entries carrying the current version are exact.
    version: u64,
    ig: Vec<Option<Entry>>,
    detection: Vec<Option<Entry>>,
    /// The best fresh information gain of the last selection step, with the
    /// version it was observed at — the reorganization tripwire's
    /// reference. In the diminishing-returns regime the per-step best only
    /// declines; a best rising beyond the accumulated drift slack means the
    /// model reorganized (basin shift) and no stale bound can be trusted.
    last_best_ig: Option<(f64, u64)>,
    last: GuidanceTelemetry,
    totals: GuidanceTelemetry,
    steps: usize,
}

impl GuidanceCache {
    /// An empty cache at version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current corpus version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Marks a state change: every retained entry becomes stale (an upper
    /// bound rather than an exact value). Call once per session mutation,
    /// *before* region-level invalidation.
    pub fn bump_version(&mut self) {
        self.version += 1;
    }

    /// Drops both families' entries for one object.
    pub fn invalidate_object(&mut self, object: ObjectId) {
        let i = object.index();
        if let Some(slot) = self.ig.get_mut(i) {
            *slot = None;
        }
        if let Some(slot) = self.detection.get_mut(i) {
            *slot = None;
        }
    }

    /// Drops every entry of both families (global invalidation: the next
    /// selection is a full re-score pass). The last-best reference falls
    /// with them — after an unbounded change it references nothing.
    pub fn invalidate_all(&mut self) {
        self.ig.clear();
        self.detection.clear();
        self.last_best_ig = None;
    }

    /// Drops every detection entry (the detector's evidence base changed).
    pub fn invalidate_detections(&mut self) {
        self.detection.clear();
    }

    /// Number of retained entries across both families (diagnostics).
    pub fn retained_entries(&self) -> usize {
        self.ig.iter().flatten().count() + self.detection.iter().flatten().count()
    }

    fn family(&self, family: ScoreFamily) -> &Vec<Option<Entry>> {
        match family {
            ScoreFamily::InformationGain => &self.ig,
            ScoreFamily::Detections => &self.detection,
        }
    }

    fn family_mut(&mut self, family: ScoreFamily) -> &mut Vec<Option<Entry>> {
        match family {
            ScoreFamily::InformationGain => &mut self.ig,
            ScoreFamily::Detections => &mut self.detection,
        }
    }

    /// Looks up one candidate's retained score.
    pub fn lookup(&self, family: ScoreFamily, object: ObjectId) -> CachedScore {
        match self.family(family).get(object.index()).copied().flatten() {
            None => CachedScore::Miss,
            Some(entry) if entry.version == self.version => CachedScore::Exact(entry.value),
            Some(entry) => CachedScore::Stale {
                value: entry.value,
                age: self.version - entry.version,
            },
        }
    }

    /// Stores a freshly evaluated score at the current version.
    pub fn store(&mut self, family: ScoreFamily, object: ObjectId, value: f64) {
        let version = self.version;
        let entries = self.family_mut(family);
        if entries.len() <= object.index() {
            entries.resize(object.index() + 1, None);
        }
        entries[object.index()] = Some(Entry { value, version });
    }

    /// Clears the last-step telemetry before a selection runs, so a reading
    /// taken afterwards reflects *this* step (zeros when the strategy does
    /// no hypothesis scoring at all, e.g. the random baseline).
    pub fn begin_step(&mut self) {
        self.last = GuidanceTelemetry::default();
    }

    /// Records the best fresh information gain a selection step observed.
    pub fn note_best_ig(&mut self, score: f64) {
        self.last_best_ig = Some((score, self.version));
    }

    /// The per-state-change drift slack stale bounds carry:
    /// [`RELATIVE_DRIFT_MARGIN`] of the last observed best (floored by
    /// [`ABSOLUTE_DRIFT_FLOOR`]). `None` without a reference best — no
    /// stale entry may be trusted then, so the next selection re-scores
    /// everything and records one.
    pub fn stale_bound_margin(&self, num_objects: usize) -> Option<f64> {
        let relative = RELATIVE_DRIFT_MARGIN + DRIFT_MARGIN_PER_OBJECT / num_objects.max(1) as f64;
        self.last_best_ig
            .map(|(score, _)| (relative * score.abs()).max(ABSOLUTE_DRIFT_FLOOR))
    }

    /// The ceiling the running best of the current step must stay under for
    /// stale bounds to remain trusted: the last observed best plus one
    /// `margin` of drift slack per state change since. `None` when there is
    /// no reference (fresh cache, post-restore, post-global-invalidation) —
    /// without a reference no skip is permitted.
    pub fn trusted_best_ceiling(&self, margin: f64) -> Option<f64> {
        self.last_best_ig
            .map(|(score, version)| score + (self.version - version) as f64 * margin)
    }

    /// Records the telemetry of one completed selection step.
    pub fn record_step(&mut self, step: GuidanceTelemetry) {
        self.last = step;
        self.totals.absorb(&step);
        self.steps += 1;
    }

    /// Telemetry of the most recent selection step.
    pub fn last_step(&self) -> GuidanceTelemetry {
        self.last
    }

    /// Cumulative telemetry across every selection step so far.
    pub fn totals(&self) -> GuidanceTelemetry {
        self.totals
    }

    /// Number of selection steps recorded.
    pub fn steps(&self) -> usize {
        self.steps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_tracks_versions() {
        let mut cache = GuidanceCache::new();
        let o = ObjectId(3);
        assert_eq!(
            cache.lookup(ScoreFamily::InformationGain, o),
            CachedScore::Miss
        );
        cache.store(ScoreFamily::InformationGain, o, 0.5);
        assert_eq!(
            cache.lookup(ScoreFamily::InformationGain, o),
            CachedScore::Exact(0.5)
        );
        // The detection family is independent.
        assert_eq!(cache.lookup(ScoreFamily::Detections, o), CachedScore::Miss);
        cache.bump_version();
        assert_eq!(
            cache.lookup(ScoreFamily::InformationGain, o),
            CachedScore::Stale { value: 0.5, age: 1 }
        );
        cache.bump_version();
        assert_eq!(
            cache.lookup(ScoreFamily::InformationGain, o),
            CachedScore::Stale { value: 0.5, age: 2 }
        );
        cache.store(ScoreFamily::InformationGain, o, 0.4);
        assert_eq!(
            cache.lookup(ScoreFamily::InformationGain, o),
            CachedScore::Exact(0.4)
        );
    }

    #[test]
    fn invalidation_scopes() {
        let mut cache = GuidanceCache::new();
        for i in 0..4 {
            cache.store(ScoreFamily::InformationGain, ObjectId(i), i as f64);
            cache.store(ScoreFamily::Detections, ObjectId(i), i as f64);
        }
        assert_eq!(cache.retained_entries(), 8);
        cache.invalidate_object(ObjectId(1));
        assert_eq!(
            cache.lookup(ScoreFamily::InformationGain, ObjectId(1)),
            CachedScore::Miss
        );
        assert_eq!(
            cache.lookup(ScoreFamily::Detections, ObjectId(1)),
            CachedScore::Miss
        );
        assert_eq!(cache.retained_entries(), 6);
        cache.invalidate_detections();
        assert_eq!(
            cache.lookup(ScoreFamily::Detections, ObjectId(2)),
            CachedScore::Miss
        );
        assert_eq!(
            cache.lookup(ScoreFamily::InformationGain, ObjectId(2)),
            CachedScore::Exact(2.0)
        );
        cache.invalidate_all();
        assert_eq!(cache.retained_entries(), 0);
    }

    #[test]
    fn out_of_range_invalidation_is_a_noop() {
        let mut cache = GuidanceCache::new();
        cache.invalidate_object(ObjectId(17));
        assert_eq!(cache.retained_entries(), 0);
    }

    #[test]
    fn telemetry_accumulates() {
        let mut cache = GuidanceCache::new();
        cache.record_step(GuidanceTelemetry {
            evaluated: 4,
            served_from_cache: 12,
            em_iterations: 40,
        });
        cache.record_step(GuidanceTelemetry {
            evaluated: 2,
            served_from_cache: 14,
            em_iterations: 18,
        });
        assert_eq!(cache.steps(), 2);
        assert_eq!(cache.last_step().evaluated, 2);
        let totals = cache.totals();
        assert_eq!(totals.evaluated, 6);
        assert_eq!(totals.served_from_cache, 26);
        assert_eq!(totals.em_iterations, 58);
        assert!((totals.hit_rate() - 26.0 / 32.0).abs() < 1e-12);
        assert_eq!(GuidanceTelemetry::default().hit_rate(), 0.0);
    }
}
