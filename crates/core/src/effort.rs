//! The effort-minimization problem (paper §5.1 and Appendix E).
//!
//! Problem 1 asks for the shortest validation sequence that reaches a goal Δ
//! within a budget `b`. Even the restricted variant — pick a minimal *set* of
//! objects whose joint entropy exceeds a threshold (Eq. 16) — is NP-hard
//! (maximum-entropy sampling), because the objects are not independent: they
//! are coupled through the workers that answered them. This module provides
//!
//! * an upper bound on the joint entropy of a set of objects (independence
//!   bound: the sum of marginal entropies), and
//! * the classic greedy approximation for the restricted problem: repeatedly
//!   add the object with the largest marginal entropy. The guidance
//!   strategies of [`crate::strategy`] refine this greedy scheme by scoring
//!   candidates with the *expected* entropy reduction instead of the marginal
//!   entropy.

use crowdval_model::{ObjectId, ProbabilisticAnswerSet};

/// Independence upper bound on the joint entropy of a set of objects:
/// `H(o₁, …, o_k) ≤ Σ H(o_j)` with equality iff the objects are independent.
pub fn joint_entropy_upper_bound(p: &ProbabilisticAnswerSet, objects: &[ObjectId]) -> f64 {
    objects.iter().map(|&o| p.object_uncertainty(o)).sum()
}

/// Greedy approximation of the restricted effort-minimization problem
/// (Eq. 16): selects up to `k` objects maximizing the independence bound on
/// the joint entropy, i.e. the `k` objects with the largest marginal
/// entropies. Ties break toward smaller object ids; objects with zero entropy
/// are never selected (validating them cannot reduce uncertainty).
pub fn greedy_max_entropy_subset(p: &ProbabilisticAnswerSet, k: usize) -> Vec<ObjectId> {
    let mut scored: Vec<(ObjectId, f64)> = (0..p.num_objects())
        .map(|o| (ObjectId(o), p.object_uncertainty(ObjectId(o))))
        .filter(|(_, h)| *h > 0.0)
        .collect();
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.into_iter().take(k).map(|(o, _)| o).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_model::LabelId;

    fn state() -> ProbabilisticAnswerSet {
        let mut p = ProbabilisticAnswerSet::uninformed(5, 2, 2);
        // Object 0: certain; objects 1 and 3: skewed; 2 and 4: uniform.
        p.assignment_mut().set_certain(ObjectId(0), LabelId(0));
        p.assignment_mut()
            .set_distribution(ObjectId(1), &[0.9, 0.1]);
        p.assignment_mut()
            .set_distribution(ObjectId(3), &[0.7, 0.3]);
        p
    }

    #[test]
    fn joint_entropy_bound_is_the_sum_of_marginals() {
        let p = state();
        let all: Vec<ObjectId> = (0..5).map(ObjectId).collect();
        let bound = joint_entropy_upper_bound(&p, &all);
        assert!((bound - p.uncertainty()).abs() < 1e-12);
        assert_eq!(joint_entropy_upper_bound(&p, &[ObjectId(0)]), 0.0);
    }

    #[test]
    fn greedy_subset_prefers_the_most_uncertain_objects() {
        let p = state();
        let picked = greedy_max_entropy_subset(&p, 2);
        assert_eq!(picked, vec![ObjectId(2), ObjectId(4)]);
        let three = greedy_max_entropy_subset(&p, 3);
        assert_eq!(three, vec![ObjectId(2), ObjectId(4), ObjectId(3)]);
    }

    #[test]
    fn greedy_subset_never_selects_certain_objects() {
        let p = state();
        let picked = greedy_max_entropy_subset(&p, 10);
        assert!(!picked.contains(&ObjectId(0)));
        assert_eq!(picked.len(), 4);
    }

    #[test]
    fn k_zero_selects_nothing() {
        assert!(greedy_max_entropy_subset(&state(), 0).is_empty());
    }
}
