//! Incrementally maintained per-object entropy cache for the §5.4 entropy
//! pre-filter.
//!
//! Every selection step ranks the candidate objects by their current label
//! entropy before the expensive hypothesis fan-out. The batch pipeline
//! recomputed every entropy from scratch per step — `O(objects × labels)`
//! `ln()` calls even when a delta-scoped update moved only a handful of
//! assignment rows. An [`EntropyShortlist`] instead caches the entropies and
//! invalidates **only the affected entries**: after each re-aggregation the
//! session diffs the old and new assignment matrices row-wise
//! ([`EntropyShortlist::invalidate_changed`]) and marks exactly the rows
//! whose distribution moved; [`EntropyShortlist::refresh`] then recomputes
//! the dirty entries and nothing else.
//!
//! Rows are marked dirty on *any* bitwise change, so a cached entry is always
//! bit-identical to what [`ProbabilisticAnswerSet::object_uncertainty`] would
//! return — strategies re-rank incrementally without the shortlist order ever
//! diverging from the from-scratch computation.

use crowdval_model::{AssignmentMatrix, ObjectId, ProbabilisticAnswerSet};

/// Cached per-object entropies with row-level invalidation.
#[derive(Debug, Clone, Default)]
pub struct EntropyShortlist {
    entropies: Vec<f64>,
    dirty: Vec<bool>,
}

impl EntropyShortlist {
    /// An empty cache; entries appear (dirty) as the object space grows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of objects currently covered.
    pub fn len(&self) -> usize {
        self.entropies.len()
    }

    /// True when no object is covered yet.
    pub fn is_empty(&self) -> bool {
        self.entropies.is_empty()
    }

    /// Grows the cache to cover `num_objects` objects; new entries start
    /// dirty.
    pub fn ensure_len(&mut self, num_objects: usize) {
        if num_objects > self.entropies.len() {
            self.entropies.resize(num_objects, 0.0);
            self.dirty.resize(num_objects, true);
        }
    }

    /// Marks one object's entry for recomputation.
    pub fn invalidate(&mut self, object: ObjectId) {
        self.ensure_len(object.index() + 1);
        self.dirty[object.index()] = true;
    }

    /// Marks every entry for recomputation.
    pub fn invalidate_all(&mut self) {
        self.dirty.fill(true);
    }

    /// Diffs two assignment matrices row-wise and marks exactly the objects
    /// whose label distribution changed (any bitwise difference counts — the
    /// cache must stay exact, not merely approximately fresh). Objects
    /// beyond `previous` (stream growth) are marked dirty unconditionally.
    ///
    /// Returns the number of rows *this* diff changed (growth rows
    /// included) — independent of entries still dirty from earlier
    /// invalidations, so ingestion can report how local one update stayed.
    pub fn invalidate_changed(
        &mut self,
        previous: &AssignmentMatrix,
        next: &AssignmentMatrix,
    ) -> usize {
        let m = next.num_labels();
        self.ensure_len(next.num_objects());
        let prev = previous.matrix().as_slice();
        let cur = next.matrix().as_slice();
        let shared = previous.num_objects().min(next.num_objects());
        let mut changed = 0usize;
        for o in 0..shared {
            let range = o * m..(o + 1) * m;
            if prev[range.clone()] != cur[range] {
                self.dirty[o] = true;
                changed += 1;
            }
        }
        for o in shared..next.num_objects() {
            self.dirty[o] = true;
            changed += 1;
        }
        changed
    }

    /// Recomputes every dirty entry from `current` and clears the dirty
    /// flags. Call once per selection step, before reading entropies.
    pub fn refresh(&mut self, current: &ProbabilisticAnswerSet) {
        self.ensure_len(current.num_objects());
        for o in 0..current.num_objects() {
            if self.dirty[o] {
                self.entropies[o] = current.object_uncertainty(ObjectId(o));
                self.dirty[o] = false;
            }
        }
    }

    /// The cached entropy of one object. Panics if the object is out of
    /// range; stale unless [`EntropyShortlist::refresh`] ran after the last
    /// invalidation. Internal rankers that iterate `0..len()` may keep
    /// using this; anything fed an id from outside the session (the service
    /// front-end, triage feature extraction) must go through
    /// [`EntropyShortlist::try_entropy`] instead — a malformed request must
    /// become a typed error, never a shard-killing panic.
    pub fn entropy(&self, object: ObjectId) -> f64 {
        self.entropies[object.index()]
    }

    /// Checked variant of [`EntropyShortlist::entropy`]: `None` when the
    /// object is outside the cached range instead of panicking.
    pub fn try_entropy(&self, object: ObjectId) -> Option<f64> {
        self.entropies.get(object.index()).copied()
    }

    /// Number of entries currently marked dirty (diagnostics; the ingest
    /// bench reports how much of the cache an arrival batch invalidated).
    pub fn dirty_count(&self) -> usize {
        self.dirty.iter().filter(|&&d| d).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_model::LabelId;

    fn state(rows: &[&[f64]]) -> ProbabilisticAnswerSet {
        let m = rows[0].len();
        let mut assignment = AssignmentMatrix::uniform(rows.len(), m);
        for (o, row) in rows.iter().enumerate() {
            assignment.set_distribution(ObjectId(o), row);
        }
        ProbabilisticAnswerSet::new(assignment, Vec::new(), vec![1.0 / m as f64; m], 0)
    }

    #[test]
    fn cached_entropies_match_direct_computation() {
        let p = state(&[&[0.5, 0.5], &[0.9, 0.1], &[1.0, 0.0]]);
        let mut cache = EntropyShortlist::new();
        cache.refresh(&p);
        for o in 0..3 {
            assert_eq!(
                cache.entropy(ObjectId(o)),
                p.object_uncertainty(ObjectId(o))
            );
        }
        assert_eq!(cache.dirty_count(), 0);
    }

    #[test]
    fn only_changed_rows_are_invalidated() {
        let a = state(&[&[0.5, 0.5], &[0.9, 0.1], &[0.2, 0.8]]);
        let mut b = a.clone();
        b.assignment_mut()
            .set_distribution(ObjectId(1), &[0.6, 0.4]);
        let mut cache = EntropyShortlist::new();
        cache.refresh(&a);
        let changed = cache.invalidate_changed(a.assignment(), b.assignment());
        assert_eq!(changed, 1);
        assert_eq!(cache.dirty_count(), 1);
        cache.refresh(&b);
        for o in 0..3 {
            assert_eq!(
                cache.entropy(ObjectId(o)),
                b.object_uncertainty(ObjectId(o))
            );
        }
        // The per-diff count is independent of entries left dirty earlier.
        cache.invalidate(ObjectId(2));
        let changed = cache.invalidate_changed(b.assignment(), a.assignment());
        assert_eq!(changed, 1, "pre-existing dirt must not inflate the count");
        assert_eq!(cache.dirty_count(), 2);
    }

    #[test]
    fn growth_marks_new_objects_dirty() {
        let a = state(&[&[0.5, 0.5]]);
        let b = state(&[&[0.5, 0.5], &[0.7, 0.3]]);
        let mut cache = EntropyShortlist::new();
        cache.refresh(&a);
        assert_eq!(cache.invalidate_changed(a.assignment(), b.assignment()), 1);
        assert_eq!(cache.dirty_count(), 1);
        cache.refresh(&b);
        assert_eq!(cache.len(), 2);
        assert_eq!(
            cache.entropy(ObjectId(1)),
            b.object_uncertainty(ObjectId(1))
        );
        let _ = LabelId(0);
    }

    #[test]
    fn try_entropy_is_total_over_object_ids() {
        let p = state(&[&[0.5, 0.5], &[0.9, 0.1]]);
        let mut cache = EntropyShortlist::new();
        cache.refresh(&p);
        assert_eq!(
            cache.try_entropy(ObjectId(1)),
            Some(cache.entropy(ObjectId(1)))
        );
        assert_eq!(
            cache.try_entropy(ObjectId(2)),
            None,
            "out of range must not panic"
        );
        assert_eq!(EntropyShortlist::new().try_entropy(ObjectId(0)), None);
    }

    #[test]
    fn explicit_invalidation_forces_recompute() {
        let p = state(&[&[0.5, 0.5], &[0.9, 0.1]]);
        let mut cache = EntropyShortlist::new();
        cache.refresh(&p);
        cache.invalidate(ObjectId(0));
        assert_eq!(cache.dirty_count(), 1);
        cache.invalidate_all();
        assert_eq!(cache.dirty_count(), 2);
        cache.refresh(&p);
        assert_eq!(cache.dirty_count(), 0);
    }
}
