//! Worker-driven expert guidance (paper §5.3).
//!
//! Selects the object whose validation is expected to expose the most faulty
//! workers: `select_w(O') = argmax_o R(W | o)` where
//! `R(W | o) = Σ_l U(o, l) · R(W | o = l)` (Eq. 13–14) and `R(W | o = l)` is
//! the number of workers that would be flagged as spammers or sloppy if the
//! expert asserted label `l` for object `o` (Eq. 12).

use super::{SelectionStrategy, StrategyContext, StrategyKind};
use crate::scoring::ScoringEngine;
use crowdval_model::ObjectId;

/// `select_w(O') = argmax_{o ∈ O'} R(W | o)` (Eq. 14).
///
/// Candidate scoring — the expectation of Eq. 13 and its parallel fan-out —
/// is delegated to the shared [`ScoringEngine`]; the expected-detection score
/// needs no entropy pre-filter, so the strategy uses the exhaustive engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerDriven;

impl WorkerDriven {
    /// Expected number of detected faulty workers for a validation of
    /// `object` (Eq. 13).
    pub fn expected_detections(ctx: &StrategyContext<'_>, object: ObjectId) -> f64 {
        ScoringEngine::expected_detections_of(
            ctx.detector,
            ctx.answers,
            ctx.expert,
            ctx.current,
            object,
        )
    }

    /// Scores of all candidates (exposed for diagnostics / experiments).
    pub fn scores(ctx: &StrategyContext<'_>) -> Vec<(ObjectId, f64)> {
        ScoringEngine::exhaustive().detection_scores(&ctx.scoring(), ctx.candidates)
    }
}

impl SelectionStrategy for WorkerDriven {
    fn select(&mut self, ctx: &StrategyContext<'_>) -> Option<ObjectId> {
        if ctx.candidates.is_empty() {
            return None;
        }
        // Same argmax as the eager path; cache entries at an unchanged
        // version short-circuit repeated guidance requests.
        ScoringEngine::exhaustive()
            .select_detections(&ctx.scoring(), ctx.candidates, ctx.guidance_cache)
            .selected
    }

    fn last_kind(&self) -> StrategyKind {
        StrategyKind::WorkerDriven
    }

    fn handle_spammers_now(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "worker-driven"
    }

    fn snapshot_state(&self) -> Option<crate::strategy::StrategyState> {
        Some(crate::strategy::StrategyState::WorkerDriven)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::tests_support::context_fixture;

    #[test]
    fn scores_are_nonnegative_and_bounded_by_worker_count() {
        let mut fixture = context_fixture(10, 8, 2, 53);
        for o in 0..4 {
            fixture
                .expert
                .set(ObjectId(o), fixture.truth.label(ObjectId(o)));
        }
        fixture.refresh();
        let candidates = fixture.expert.unvalidated_objects();
        let ctx = fixture.context(&candidates);
        for (_, score) in WorkerDriven::scores(&ctx) {
            assert!(score >= 0.0);
            assert!(score <= fixture.answers.num_workers() as f64);
        }
    }

    #[test]
    fn selects_a_candidate_and_requests_spammer_handling() {
        let mut fixture = context_fixture(10, 6, 2, 59);
        for o in 0..3 {
            fixture
                .expert
                .set(ObjectId(o), fixture.truth.label(ObjectId(o)));
        }
        fixture.refresh();
        let candidates = fixture.expert.unvalidated_objects();
        let ctx = fixture.context(&candidates);
        let mut s = WorkerDriven;
        let picked = s.select(&ctx).unwrap();
        assert!(candidates.contains(&picked));
        assert!(s.handle_spammers_now());
        assert_eq!(s.last_kind(), StrategyKind::WorkerDriven);
        assert_eq!(s.name(), "worker-driven");
    }

    #[test]
    fn more_validations_enable_more_expected_detections() {
        // With almost no validations the detector cannot judge anybody, so the
        // expected detections are (near) zero; once enough validations exist
        // the expected count grows.
        let mut fixture = context_fixture(20, 10, 2, 61);
        let candidates = fixture.expert.unvalidated_objects();
        let early_max = {
            let ctx = fixture.context(&candidates);
            WorkerDriven::scores(&ctx)
                .into_iter()
                .map(|(_, s)| s)
                .fold(0.0, f64::max)
        };
        for o in 0..10 {
            fixture
                .expert
                .set(ObjectId(o), fixture.truth.label(ObjectId(o)));
        }
        fixture.refresh();
        let later_candidates = fixture.expert.unvalidated_objects();
        let later_max = {
            let ctx = fixture.context(&later_candidates);
            WorkerDriven::scores(&ctx)
                .into_iter()
                .map(|(_, s)| s)
                .fold(0.0, f64::max)
        };
        assert!(
            later_max >= early_max,
            "later {later_max} < early {early_max}"
        );
    }

    #[test]
    fn empty_candidates_yield_none() {
        let fixture = context_fixture(4, 3, 2, 67);
        let ctx = fixture.context(&[]);
        assert_eq!(WorkerDriven.select(&ctx), None);
    }
}
