//! Random selection — the unguided validation process of §3.2's "simple
//! manual validation" example; the weakest baseline.

use super::{SelectionStrategy, StrategyContext, StrategyKind};
use crowdval_model::ObjectId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Picks an unvalidated object uniformly at random.
#[derive(Debug, Clone)]
pub struct RandomSelection {
    rng: StdRng,
}

impl RandomSelection {
    /// Creates a random selector with a fixed seed for reproducibility.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Rebuilds a selector from a snapshotted RNG state
    /// ([`crate::strategy::StrategyState::Random`]), resuming the draw
    /// stream mid-sequence.
    pub(crate) fn from_rng_state(state: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(state),
        }
    }
}

impl SelectionStrategy for RandomSelection {
    fn select(&mut self, ctx: &StrategyContext<'_>) -> Option<ObjectId> {
        if ctx.candidates.is_empty() {
            return None;
        }
        let idx = self.rng.random_range(0..ctx.candidates.len());
        Some(ctx.candidates[idx])
    }

    fn last_kind(&self) -> StrategyKind {
        StrategyKind::Random
    }

    fn name(&self) -> &'static str {
        "random"
    }

    fn snapshot_state(&self) -> Option<crate::strategy::StrategyState> {
        Some(crate::strategy::StrategyState::Random {
            rng_state: self.rng.state(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::tests_support::context_fixture;

    #[test]
    fn selects_only_candidates_and_is_reproducible() {
        let fixture = context_fixture(6, 3, 2, 99);
        let candidates: Vec<ObjectId> = (0..6).map(ObjectId).collect();

        let pick_sequence = |seed: u64| {
            let mut s = RandomSelection::new(seed);
            (0..10)
                .map(|_| {
                    let ctx = fixture.context(&candidates);
                    s.select(&ctx).unwrap()
                })
                .collect::<Vec<_>>()
        };
        let a = pick_sequence(7);
        let b = pick_sequence(7);
        assert_eq!(a, b);
        assert!(a.iter().all(|o| o.index() < 6));
    }

    #[test]
    fn returns_none_without_candidates() {
        let fixture = context_fixture(3, 2, 2, 1);
        let mut s = RandomSelection::new(1);
        let ctx = fixture.context(&[]);
        assert_eq!(s.select(&ctx), None);
        assert_eq!(s.last_kind(), StrategyKind::Random);
        assert_eq!(s.name(), "random");
        assert!(!s.handle_spammers_now());
    }
}
