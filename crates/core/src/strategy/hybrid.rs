//! Hybrid expert guidance with dynamic weighting (paper §5.4, Algorithm 1).
//!
//! Each iteration chooses between the worker-driven and the
//! uncertainty-driven strategy by roulette-wheel selection against the score
//!
//! ```text
//! z_i = 1 − exp(−(ε_i (1 − f_i) + r_i f_i))          (Eq. 15)
//! ```
//!
//! where `ε_i` is the error rate of the previous deterministic assignment on
//! the freshly validated object, `r_i` the ratio of detected faulty workers
//! and `f_i` the ratio of validated objects. Early on (small `f_i`) the error
//! rate dominates; later the detected-spammer ratio takes over.

use super::{
    SelectionStrategy, StrategyContext, StrategyKind, UncertaintyDriven, ValidationObservation,
    WorkerDriven,
};
use crowdval_model::ObjectId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The combined strategy of Algorithm 1.
#[derive(Debug, Clone)]
pub struct HybridStrategy {
    uncertainty: UncertaintyDriven,
    worker: WorkerDriven,
    rng: StdRng,
    /// Current weighting score `z_i`; starts at 0 so the first selection is
    /// always uncertainty-driven (Algorithm 1 initializes `z_0 ← 0`).
    z: f64,
    last_kind: StrategyKind,
}

impl HybridStrategy {
    /// Hybrid strategy with the default uncertainty-driven configuration.
    pub fn new(seed: u64) -> Self {
        Self::with_uncertainty(UncertaintyDriven::new(), seed)
    }

    /// Hybrid strategy with a custom uncertainty-driven component (e.g. the
    /// exhaustive variant for small datasets).
    pub fn with_uncertainty(uncertainty: UncertaintyDriven, seed: u64) -> Self {
        Self {
            uncertainty,
            worker: WorkerDriven,
            rng: StdRng::seed_from_u64(seed),
            z: 0.0,
            last_kind: StrategyKind::Hybrid,
        }
    }

    /// The current weighting score `z_i`.
    pub fn weight(&self) -> f64 {
        self.z
    }

    /// Rebuilds a hybrid strategy from snapshotted state
    /// ([`crate::strategy::StrategyState::Hybrid`]), resuming the roulette
    /// RNG stream mid-sequence.
    pub(crate) fn from_state(
        engine: crate::scoring::ScoringEngine,
        rng_state: u64,
        weight: f64,
        last_kind: StrategyKind,
    ) -> Self {
        Self {
            uncertainty: UncertaintyDriven::with_engine(engine),
            worker: WorkerDriven,
            rng: StdRng::seed_from_u64(rng_state),
            z: weight,
            last_kind,
        }
    }

    /// Computes the Eq. 15 score from an observation.
    pub fn weighting_score(observation: &ValidationObservation) -> f64 {
        let f = observation.coverage.clamp(0.0, 1.0);
        let eps = observation.error_rate.clamp(0.0, 1.0);
        let r = observation.faulty_ratio.clamp(0.0, 1.0);
        1.0 - (-(eps * (1.0 - f) + r * f)).exp()
    }
}

impl SelectionStrategy for HybridStrategy {
    fn select(&mut self, ctx: &StrategyContext<'_>) -> Option<ObjectId> {
        if ctx.candidates.is_empty() {
            return None;
        }
        // Roulette-wheel choice: even a large z leaves a chance for the
        // uncertainty-driven strategy (Algorithm 1, lines 6–8).
        let x: f64 = self.rng.random_range(0.0..1.0);
        if x < self.z {
            self.last_kind = StrategyKind::WorkerDriven;
            self.worker.select(ctx)
        } else {
            self.last_kind = StrategyKind::UncertaintyDriven;
            self.uncertainty.select(ctx)
        }
    }

    fn last_kind(&self) -> StrategyKind {
        self.last_kind
    }

    fn handle_spammers_now(&self) -> bool {
        self.last_kind == StrategyKind::WorkerDriven
    }

    fn observe(&mut self, observation: &ValidationObservation) {
        self.z = Self::weighting_score(observation);
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn snapshot_state(&self) -> Option<crate::strategy::StrategyState> {
        Some(crate::strategy::StrategyState::Hybrid {
            engine: *self.uncertainty.engine(),
            rng_state: self.rng.state(),
            weight: self.z,
            last_kind: self.last_kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::tests_support::context_fixture;

    #[test]
    fn weighting_score_follows_equation_15() {
        // No errors, no spammers -> 0.
        let z = HybridStrategy::weighting_score(&ValidationObservation {
            error_rate: 0.0,
            faulty_ratio: 0.0,
            coverage: 0.5,
        });
        assert!(z.abs() < 1e-12);

        // Early phase: the error rate dominates.
        let early = HybridStrategy::weighting_score(&ValidationObservation {
            error_rate: 1.0,
            faulty_ratio: 0.0,
            coverage: 0.0,
        });
        assert!((early - (1.0 - (-1.0_f64).exp())).abs() < 1e-12);

        // Late phase: the spammer ratio dominates.
        let late = HybridStrategy::weighting_score(&ValidationObservation {
            error_rate: 1.0,
            faulty_ratio: 0.4,
            coverage: 1.0,
        });
        assert!((late - (1.0 - (-0.4_f64).exp())).abs() < 1e-12);

        // The score is always in [0, 1).
        for eps in [0.0, 0.5, 1.0] {
            for r in [0.0, 0.5, 1.0] {
                for f in [0.0, 0.5, 1.0] {
                    let z = HybridStrategy::weighting_score(&ValidationObservation {
                        error_rate: eps,
                        faulty_ratio: r,
                        coverage: f,
                    });
                    assert!((0.0..1.0).contains(&z));
                }
            }
        }
    }

    #[test]
    fn first_selection_is_uncertainty_driven() {
        let fixture = context_fixture(10, 5, 2, 71);
        let candidates: Vec<ObjectId> = (0..10).map(ObjectId).collect();
        let ctx = fixture.context(&candidates);
        let mut s = HybridStrategy::new(1);
        let picked = s.select(&ctx);
        assert!(picked.is_some());
        assert_eq!(s.last_kind(), StrategyKind::UncertaintyDriven);
        assert!(!s.handle_spammers_now());
        assert_eq!(s.name(), "hybrid");
    }

    #[test]
    fn high_weight_eventually_selects_the_worker_driven_branch() {
        let mut fixture = context_fixture(10, 6, 2, 73);
        for o in 0..4 {
            fixture
                .expert
                .set(ObjectId(o), fixture.truth.label(ObjectId(o)));
        }
        fixture.refresh();
        let candidates = fixture.expert.unvalidated_objects();
        let mut s = HybridStrategy::new(3);
        s.observe(&ValidationObservation {
            error_rate: 1.0,
            faulty_ratio: 1.0,
            coverage: 1.0,
        });
        assert!(s.weight() > 0.6);
        let mut saw_worker_driven = false;
        for _ in 0..30 {
            let ctx = fixture.context(&candidates);
            s.select(&ctx);
            if s.last_kind() == StrategyKind::WorkerDriven {
                assert!(s.handle_spammers_now());
                saw_worker_driven = true;
                break;
            }
        }
        assert!(
            saw_worker_driven,
            "worker-driven branch never taken despite z = {}",
            s.weight()
        );
    }

    #[test]
    fn empty_candidates_yield_none() {
        let fixture = context_fixture(4, 3, 2, 79);
        let ctx = fixture.context(&[]);
        assert_eq!(HybridStrategy::new(5).select(&ctx), None);
    }
}
