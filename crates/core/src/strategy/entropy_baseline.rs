//! Highest-entropy baseline (paper §6.6 and Appendix C).
//!
//! Selects the most "problematic" object — the one whose current label
//! distribution has the highest Shannon entropy. Stronger than random
//! selection because it focuses on objects on the edge of being right or
//! wrong, but blind to the *consequences* of a validation (it ignores how the
//! validation would propagate through worker reliabilities).

use super::{argmax_object, SelectionStrategy, StrategyContext, StrategyKind};
use crowdval_model::ObjectId;

/// The `select(O) = argmax_o H(o)` baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct EntropyBaseline;

impl SelectionStrategy for EntropyBaseline {
    fn select(&mut self, ctx: &StrategyContext<'_>) -> Option<ObjectId> {
        let scores: Vec<(ObjectId, f64)> = ctx
            .candidates
            .iter()
            .map(|&o| (o, ctx.current.object_uncertainty(o)))
            .collect();
        argmax_object(&scores)
    }

    fn last_kind(&self) -> StrategyKind {
        StrategyKind::EntropyBaseline
    }

    fn name(&self) -> &'static str {
        "entropy-baseline"
    }

    fn snapshot_state(&self) -> Option<crate::strategy::StrategyState> {
        Some(crate::strategy::StrategyState::EntropyBaseline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::tests_support::context_fixture;
    use crowdval_model::LabelId;

    #[test]
    fn picks_the_object_with_the_most_uncertain_distribution() {
        let mut fixture = context_fixture(8, 5, 2, 17);
        // Force a perfectly uncertain object by hand.
        fixture
            .current
            .assignment_mut()
            .set_distribution(ObjectId(3), &[0.5, 0.5]);
        // And a perfectly certain one.
        fixture
            .current
            .assignment_mut()
            .set_certain(ObjectId(5), LabelId(0));
        let candidates: Vec<ObjectId> = (0..8).map(ObjectId).collect();
        let ctx = fixture.context(&candidates);
        let mut s = EntropyBaseline;
        assert_eq!(s.select(&ctx), Some(ObjectId(3)));
    }

    #[test]
    fn ignores_objects_outside_the_candidate_set() {
        let mut fixture = context_fixture(6, 4, 2, 18);
        fixture
            .current
            .assignment_mut()
            .set_distribution(ObjectId(0), &[0.5, 0.5]);
        let candidates = vec![ObjectId(1), ObjectId(2)];
        let ctx = fixture.context(&candidates);
        let mut s = EntropyBaseline;
        let picked = s.select(&ctx).unwrap();
        assert!(candidates.contains(&picked));
        assert_eq!(s.name(), "entropy-baseline");
        assert_eq!(s.last_kind(), StrategyKind::EntropyBaseline);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let fixture = context_fixture(4, 3, 2, 19);
        let ctx = fixture.context(&[]);
        assert_eq!(EntropyBaseline.select(&ctx), None);
    }
}
