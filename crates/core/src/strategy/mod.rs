//! Expert-guidance strategies: the *select* step of the validation process
//! (paper §3.2 step 1 and §5).
//!
//! A strategy picks, among the objects that still lack expert input, the one
//! whose validation is expected to be most beneficial. The paper proposes an
//! uncertainty-driven strategy (information gain, §5.2), a worker-driven
//! strategy (expected spammer detections, §5.3) and a dynamically weighted
//! hybrid of the two (§5.4). A random selector and the highest-entropy
//! baseline used in the evaluation (§6.6 / Appendix C) are included for
//! comparison.

mod entropy_baseline;
mod hybrid;
mod random;
mod uncertainty_driven;
mod worker_driven;

pub use entropy_baseline::EntropyBaseline;
pub use hybrid::HybridStrategy;
pub use random::RandomSelection;
pub use uncertainty_driven::UncertaintyDriven;
pub use worker_driven::WorkerDriven;

use crowdval_aggregation::Aggregator;
use crowdval_model::{AnswerSet, ExpertValidation, ObjectId, ProbabilisticAnswerSet};
use crowdval_spammer::SpammerDetector;
use serde::{Deserialize, Serialize};

/// Everything a strategy may look at when choosing the next object.
pub struct StrategyContext<'a> {
    /// The answer set used for aggregation (answers of excluded workers are
    /// already filtered out).
    pub answers: &'a AnswerSet,
    /// Expert validations collected so far.
    pub expert: &'a ExpertValidation,
    /// The current probabilistic answer set.
    pub current: &'a ProbabilisticAnswerSet,
    /// The aggregator used to evaluate hypothetical validations.
    pub aggregator: &'a dyn Aggregator,
    /// The faulty-worker detector (with its thresholds).
    pub detector: &'a SpammerDetector,
    /// Objects that may be selected (the unvalidated ones).
    pub candidates: &'a [ObjectId],
    /// Whether per-candidate scoring may use multiple threads (§5.4
    /// "Parallelization").
    pub parallel: bool,
    /// Refreshed per-object entropy cache for the pre-filter, when the
    /// caller maintains one (the streaming session does; ad-hoc contexts
    /// pass `None` and entropies are recomputed from `current`).
    pub entropy_cache: Option<&'a crate::shortlist::EntropyShortlist>,
    /// Cross-step guidance score cache, when the caller maintains one (the
    /// streaming session does). Strategies built on hypothesis scoring route
    /// their selection through
    /// [`crate::scoring::ScoringEngine::select_information_gain`] /
    /// [`crate::scoring::ScoringEngine::select_detections`], which serve
    /// scores from this cache where possible; `None` falls back to the
    /// eager re-score-everything path.
    pub guidance_cache: Option<&'a std::cell::RefCell<crate::guidance_cache::GuidanceCache>>,
}

impl<'a> StrategyContext<'a> {
    /// The scoring view of this context (everything except the candidate
    /// list), handed to the [`crate::scoring::ScoringEngine`].
    pub fn scoring(&self) -> crate::scoring::ScoringContext<'a> {
        crate::scoring::ScoringContext {
            answers: self.answers,
            expert: self.expert,
            current: self.current,
            aggregator: self.aggregator,
            detector: self.detector,
            parallel: self.parallel,
            entropy_cache: self.entropy_cache,
        }
    }
}

/// Which concrete strategy made a selection; recorded in validation traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StrategyKind {
    Random,
    EntropyBaseline,
    UncertaintyDriven,
    WorkerDriven,
    Hybrid,
}

/// Feedback handed back to the strategy after each validation, used by the
/// hybrid strategy to update its dynamic weighting (Eq. 15).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationObservation {
    /// Error rate `ε_i = 1 − U_{i−1}(o, l)` of the previous estimate for the
    /// object that was just validated.
    pub error_rate: f64,
    /// Ratio `r_i` of detected faulty workers over the population.
    pub faulty_ratio: f64,
    /// Ratio `f_i` of validated objects over all objects.
    pub coverage: f64,
}

/// The *select* step of the validation process.
///
/// `Send` is a supertrait so a strategy (and the session owning it) can be
/// moved onto a shard worker thread — the sharded service runtime gives
/// every session a single owning thread. Strategies are plain data plus
/// RNG state; none of the built-ins hold thread-bound resources.
pub trait SelectionStrategy: Send {
    /// Chooses the next object to validate among `ctx.candidates`.
    /// Returns `None` when there is nothing left to validate.
    fn select(&mut self, ctx: &StrategyContext<'_>) -> Option<ObjectId>;

    /// Which strategy variant produced the last selection (for hybrids this
    /// varies per call).
    fn last_kind(&self) -> StrategyKind;

    /// Whether detected faulty workers should be excluded from aggregation in
    /// the round following the last selection (Algorithm 1 handles spammers
    /// only when the worker-driven branch was taken).
    fn handle_spammers_now(&self) -> bool {
        false
    }

    /// Observes the outcome of the validation that followed the last
    /// selection. Default: ignore.
    fn observe(&mut self, _observation: &ValidationObservation) {}

    /// Stable name used in reports.
    fn name(&self) -> &'static str;

    /// Serializable state for session snapshots, when the strategy supports
    /// checkpointing. All built-in strategies do — including their RNG
    /// streams, so a restored session reproduces the exact selection
    /// sequence of an uninterrupted run. Custom strategies may return
    /// `None`, in which case the owning session refuses to snapshot (with a
    /// typed error, not a panic).
    fn snapshot_state(&self) -> Option<StrategyState> {
        None
    }
}

/// Serializable state of a built-in selection strategy: configuration plus
/// whatever mutable state the strategy carries across selections (RNG
/// streams, the hybrid weighting score). Restoring through
/// [`StrategyState::into_strategy`] resumes the selection sequence
/// bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StrategyState {
    /// [`RandomSelection`] with its RNG mid-stream state.
    Random { rng_state: u64 },
    /// [`EntropyBaseline`] (stateless).
    EntropyBaseline,
    /// [`UncertaintyDriven`] with its scoring-engine configuration.
    UncertaintyDriven {
        engine: crate::scoring::ScoringEngine,
    },
    /// [`WorkerDriven`] (stateless).
    WorkerDriven,
    /// [`HybridStrategy`]: scoring engine, roulette RNG mid-stream state,
    /// the current Eq. 15 weight and the branch taken last.
    Hybrid {
        engine: crate::scoring::ScoringEngine,
        rng_state: u64,
        weight: f64,
        last_kind: StrategyKind,
    },
}

impl StrategyState {
    /// Rebuilds the described strategy, resuming exactly where the
    /// snapshotted one left off.
    pub fn into_strategy(self) -> Box<dyn SelectionStrategy> {
        match self {
            StrategyState::Random { rng_state } => {
                Box::new(RandomSelection::from_rng_state(rng_state))
            }
            StrategyState::EntropyBaseline => Box::new(EntropyBaseline),
            StrategyState::UncertaintyDriven { engine } => {
                Box::new(UncertaintyDriven::with_engine(engine))
            }
            StrategyState::WorkerDriven => Box::new(WorkerDriven),
            StrategyState::Hybrid {
                engine,
                rng_state,
                weight,
                last_kind,
            } => Box::new(HybridStrategy::from_state(
                engine, rng_state, weight, last_kind,
            )),
        }
    }
}

/// Selects the argmax of a per-candidate score with deterministic tie-breaks
/// (smaller object id wins). Scores that are `NaN` are treated as `-∞`.
pub(crate) fn argmax_object(scores: &[(ObjectId, f64)]) -> Option<ObjectId> {
    scores
        .iter()
        .fold(None::<(ObjectId, f64)>, |best, &(o, s)| {
            let s = if s.is_nan() { f64::NEG_INFINITY } else { s };
            match best {
                None => Some((o, s)),
                Some((bo, bs)) => {
                    if s > bs || (s == bs && o < bo) {
                        Some((o, s))
                    } else {
                        Some((bo, bs))
                    }
                }
            }
        })
        .map(|(o, _)| o)
}

/// Shared fixtures for the strategy unit tests: a small synthetic dataset, an
/// aggregated state and the components needed to build a [`StrategyContext`].
#[cfg(test)]
pub(crate) mod tests_support {
    use super::StrategyContext;
    use crowdval_aggregation::{Aggregator, IncrementalEm};
    use crowdval_model::{
        AnswerSet, ExpertValidation, GroundTruth, ObjectId, ProbabilisticAnswerSet,
    };
    use crowdval_sim::SyntheticConfig;
    use crowdval_spammer::SpammerDetector;

    pub(crate) struct ContextFixture {
        pub answers: AnswerSet,
        pub truth: GroundTruth,
        pub expert: ExpertValidation,
        pub current: ProbabilisticAnswerSet,
        pub aggregator: IncrementalEm,
        pub detector: SpammerDetector,
    }

    impl ContextFixture {
        pub(crate) fn context<'a>(&'a self, candidates: &'a [ObjectId]) -> StrategyContext<'a> {
            StrategyContext {
                answers: &self.answers,
                expert: &self.expert,
                current: &self.current,
                aggregator: &self.aggregator,
                detector: &self.detector,
                candidates,
                parallel: false,
                entropy_cache: None,
                guidance_cache: None,
            }
        }

        /// Re-aggregates after the expert validations changed.
        pub(crate) fn refresh(&mut self) {
            self.current =
                self.aggregator
                    .conclude(&self.answers, &self.expert, Some(&self.current));
        }
    }

    pub(crate) fn context_fixture(
        objects: usize,
        workers: usize,
        labels: usize,
        seed: u64,
    ) -> ContextFixture {
        let synth = SyntheticConfig {
            num_objects: objects,
            num_workers: workers,
            num_labels: labels,
            ..SyntheticConfig::paper_default(seed)
        }
        .generate();
        let answers = synth.dataset.answers().clone();
        let truth = synth.dataset.ground_truth().clone();
        let expert = ExpertValidation::empty(objects);
        let aggregator = IncrementalEm::default();
        let current = aggregator.conclude(&answers, &expert, None);
        ContextFixture {
            answers,
            truth,
            expert,
            current,
            aggregator,
            detector: SpammerDetector::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_breaks_ties_by_object_id() {
        let scores = vec![
            (ObjectId(3), 1.0),
            (ObjectId(1), 2.0),
            (ObjectId(0), 2.0),
            (ObjectId(2), f64::NAN),
        ];
        assert_eq!(argmax_object(&scores), Some(ObjectId(0)));
        assert_eq!(argmax_object(&[]), None);
    }

    #[test]
    fn nan_scores_never_win() {
        let scores = vec![(ObjectId(0), f64::NAN), (ObjectId(1), -5.0)];
        assert_eq!(argmax_object(&scores), Some(ObjectId(1)));
    }
}
