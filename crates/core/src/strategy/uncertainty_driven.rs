//! Uncertainty-driven expert guidance (paper §5.2).
//!
//! Selects the object with the maximum *information gain*
//! `IG(o) = H(P) − H(P | o)` (Eq. 9–10): the expected reduction of the answer
//! set's uncertainty if the expert validated `o`, where the expectation runs
//! over the possible expert answers weighted by the current assignment
//! probabilities and each hypothesis is evaluated by re-running the (warm
//! started) aggregation.
//!
//! Evaluating the information gain of every unvalidated object is the
//! expensive part of the whole framework: it costs one aggregation run per
//! (candidate, plausible label) pair. The strategy therefore delegates the
//! entire hot path — entropy pre-filter, warm-started hypothesis evaluation
//! and parallel fan-out (§5.4) — to the shared
//! [`crate::scoring::ScoringEngine`].

use super::{SelectionStrategy, StrategyContext, StrategyKind};
use crate::scoring::ScoringEngine;
use crowdval_model::ObjectId;

/// `select_u(O') = argmax_{o ∈ O'} IG(o)` (Eq. 10).
#[derive(Debug, Clone, Copy, Default)]
pub struct UncertaintyDriven {
    engine: ScoringEngine,
}

impl UncertaintyDriven {
    /// Strategy with the default candidate pre-filter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Strategy evaluating every candidate exactly (used by the experiments
    /// that need the full ranking, e.g. the i-EM guidance-consistency study).
    pub fn exhaustive() -> Self {
        Self {
            engine: ScoringEngine::exhaustive(),
        }
    }

    /// Strategy with a custom pre-filter width.
    pub fn with_max_evaluated(max_evaluated: usize) -> Self {
        Self {
            engine: ScoringEngine::with_shortlist(max_evaluated),
        }
    }

    /// Strategy built around an explicit scoring engine.
    pub fn with_engine(engine: ScoringEngine) -> Self {
        Self { engine }
    }

    /// The scoring engine driving this strategy's hypothesis evaluations.
    pub fn engine(&self) -> &ScoringEngine {
        &self.engine
    }

    /// Information gain of every shortlisted candidate (exposed for the
    /// experiments that compare rankings, e.g. Fig. 7).
    pub fn scores(&self, ctx: &StrategyContext<'_>) -> Vec<(ObjectId, f64)> {
        self.engine
            .information_gain_scores(&ctx.scoring(), ctx.candidates)
    }
}

impl SelectionStrategy for UncertaintyDriven {
    fn select(&mut self, ctx: &StrategyContext<'_>) -> Option<ObjectId> {
        if ctx.candidates.is_empty() {
            return None;
        }
        // Lazy bound-based selection over the caller's guidance cache; with
        // no cache attached this is exactly the eager score-then-argmax.
        self.engine
            .select_information_gain(&ctx.scoring(), ctx.candidates, ctx.guidance_cache)
            .selected
    }

    fn last_kind(&self) -> StrategyKind {
        StrategyKind::UncertaintyDriven
    }

    fn snapshot_state(&self) -> Option<crate::strategy::StrategyState> {
        Some(crate::strategy::StrategyState::UncertaintyDriven {
            engine: self.engine,
        })
    }

    fn name(&self) -> &'static str {
        "uncertainty-driven"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::tests_support::context_fixture;
    use crowdval_model::LabelId;

    #[test]
    fn prefers_objects_whose_validation_resolves_other_objects() {
        let mut fixture = context_fixture(12, 6, 2, 23);
        // Validate a couple of objects first so worker reliabilities are
        // anchored and the gain differences become meaningful.
        fixture
            .expert
            .set(ObjectId(0), fixture.truth.label(ObjectId(0)));
        fixture.refresh();
        let candidates: Vec<ObjectId> = fixture.expert.unvalidated_objects();
        let ctx = fixture.context(&candidates);
        let mut s = UncertaintyDriven::exhaustive();
        let picked = s.select(&ctx).expect("candidates available");
        assert!(candidates.contains(&picked));

        // The picked object must carry at least as much information gain as a
        // certain (already settled) object.
        let scores = s.scores(&ctx);
        let picked_score = scores.iter().find(|(o, _)| *o == picked).unwrap().1;
        for (o, score) in &scores {
            assert!(
                picked_score >= *score - 1e-9,
                "object {o} outranks the pick"
            );
        }
    }

    #[test]
    fn shortlist_limits_the_evaluated_candidates() {
        let fixture = context_fixture(20, 5, 2, 29);
        let candidates: Vec<ObjectId> = (0..20).map(ObjectId).collect();
        let ctx = fixture.context(&candidates);
        let s = UncertaintyDriven::with_max_evaluated(5);
        assert_eq!(s.scores(&ctx).len(), 5);
        assert_eq!(s.engine().shortlist_limit(), Some(5));
        let exhaustive = UncertaintyDriven::exhaustive();
        assert_eq!(exhaustive.scores(&ctx).len(), 20);
    }

    #[test]
    fn certain_objects_are_never_preferred_over_contested_ones() {
        let mut fixture = context_fixture(10, 5, 2, 31);
        fixture
            .current
            .assignment_mut()
            .set_certain(ObjectId(4), LabelId(0));
        fixture
            .current
            .assignment_mut()
            .set_distribution(ObjectId(7), &[0.5, 0.5]);
        let candidates = vec![ObjectId(4), ObjectId(7)];
        let ctx = fixture.context(&candidates);
        let mut s = UncertaintyDriven::new();
        assert_eq!(s.select(&ctx), Some(ObjectId(7)));
        assert_eq!(s.name(), "uncertainty-driven");
        assert_eq!(s.last_kind(), StrategyKind::UncertaintyDriven);
    }

    #[test]
    fn empty_candidates_yield_none() {
        let fixture = context_fixture(4, 3, 2, 37);
        let ctx = fixture.context(&[]);
        assert_eq!(UncertaintyDriven::new().select(&ctx), None);
    }

    #[test]
    fn parallel_and_serial_scoring_agree() {
        let fixture = context_fixture(10, 5, 2, 41);
        let candidates: Vec<ObjectId> = (0..10).map(ObjectId).collect();
        let serial_ctx = fixture.context(&candidates);
        let mut parallel_ctx = fixture.context(&candidates);
        parallel_ctx.parallel = true;
        let s = UncertaintyDriven::exhaustive();
        let serial = s.scores(&serial_ctx);
        let parallel = s.scores(&parallel_ctx);
        assert_eq!(serial.len(), parallel.len());
        for ((o1, s1), (o2, s2)) in serial.iter().zip(&parallel) {
            assert_eq!(o1, o2);
            assert!((s1 - s2).abs() < 1e-9);
        }
    }
}
