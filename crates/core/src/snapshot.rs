//! Session checkpointing: serializable snapshots of a full
//! [`crate::session::ValidationSession`].
//!
//! A [`SessionSnapshot`] captures everything a session needs to resume
//! **bit-identically** to an uninterrupted run: the raw vote stream, the
//! expert validation function, the worker-exclusion state, the current
//! probabilistic answer set (so the restored session warm-starts from the
//! exact floats the live one held), the accumulated trace and counters, and
//! the configuration state of the aggregator and the selection strategy —
//! RNG streams included, so even roulette-wheel strategies resume mid-draw.
//!
//! What is *not* stored is anything derivable: the masked active answer view
//! is rebuilt from the vote stream plus the exclusion set, the entropy
//! shortlist is rebuilt dirty and recomputes its cached values from the
//! restored posterior (the cache is bitwise-exact with respect to the
//! posterior, so recomputation cannot drift — see [`crate::shortlist`]),
//! and the cross-step guidance score cache is dropped outright and rebuilt
//! lazily: a missing entry is always evaluated exactly, never estimated, so
//! the restored session's first selection is a full re-score pass whose
//! winner is the same exact argmax the warm-cached live session picks (see
//! [`crate::guidance_cache`]).
//!
//! Snapshots are plain serde values: ship them through `serde_json` for the
//! service's crash-recovery path ([`crowdval-service`'s `Snapshot`/`Restore`
//! requests) or keep them in memory for cheap forking of what-if sessions.

use crate::metrics::ValidationTrace;
use crate::process::ProcessConfig;
use crate::strategy::StrategyState;
use crowdval_aggregation::AggregatorState;
use crowdval_model::{AnswerSet, ExpertValidation, GroundTruth, ProbabilisticAnswerSet};
use crowdval_spammer::{DetectorConfig, FaultyWorkerHandler, WorkerTrustLedger};
use serde::{Deserialize, Serialize};

/// Version tag written into every snapshot; bumped when the layout changes
/// so a restore can reject snapshots from an incompatible build instead of
/// misinterpreting them. v2: [`ProcessConfig`] gained the `guidance_cache`
/// switch and [`crate::metrics::ValidationStep`] the per-step guidance
/// telemetry. v3: [`ProcessConfig`] gained the online-defense `trust`
/// thresholds and the snapshot the worker-trust ledger (evidence counters,
/// tombstone flags and defense telemetry).
pub const SNAPSHOT_FORMAT_VERSION: u32 = 3;

/// A complete, serializable checkpoint of a validation session. Produce one
/// with [`crate::session::ValidationSession::snapshot`], resume with
/// [`crate::session::ValidationSession::restore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Snapshot layout version ([`SNAPSHOT_FORMAT_VERSION`]).
    pub format_version: u32,
    /// The full vote stream seen so far (unmasked — exclusions live in
    /// `handler`).
    pub answers: AnswerSet,
    /// Expert validations collected so far.
    pub expert: ExpertValidation,
    /// Worker-exclusion state (§5.3), including the audit counter.
    pub handler: FaultyWorkerHandler,
    /// The online-defense trust ledger: per-worker evidence counters,
    /// tombstone flags and cumulative defense telemetry.
    pub trust: WorkerTrustLedger,
    /// The faulty-worker detector's thresholds.
    pub detector: DetectorConfig,
    /// Run-time options.
    pub config: ProcessConfig,
    /// Reference ground truth, when the session runs in evaluation mode.
    pub ground_truth: Option<GroundTruth>,
    /// The current probabilistic answer set — the warm-start seed of every
    /// post-restore aggregation.
    pub current: ProbabilisticAnswerSet,
    /// The validation trace accumulated so far.
    pub trace: ValidationTrace,
    /// Validations performed so far.
    pub iteration: usize,
    /// Votes absorbed through streaming ingestion so far.
    pub votes_ingested: usize,
    /// Corpus size at the last cold re-anchor (the doubling trigger).
    pub answers_at_last_cold: usize,
    /// The aggregator's configuration state.
    pub aggregator: AggregatorState,
    /// The selection strategy's configuration + mutable state.
    pub strategy: StrategyState,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_json() {
        use crate::strategy::EntropyBaseline;
        let synth = crowdval_sim::SyntheticConfig {
            num_objects: 10,
            ..crowdval_sim::SyntheticConfig::paper_default(21)
        }
        .generate();
        let session =
            crate::session::ValidationSessionBuilder::new(synth.dataset.answers().clone())
                .strategy(Box::new(EntropyBaseline))
                .build();
        let snapshot = session.snapshot().unwrap();
        assert_eq!(snapshot.format_version, SNAPSHOT_FORMAT_VERSION);
        let json = serde_json::to_string(&snapshot).unwrap();
        let reread: SessionSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snapshot, reread);
    }
}
