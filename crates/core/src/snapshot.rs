//! Session checkpointing: serializable snapshots of a full
//! [`crate::session::ValidationSession`].
//!
//! A [`SessionSnapshot`] captures everything a session needs to resume
//! **bit-identically** to an uninterrupted run: the raw vote stream, the
//! expert validation function, the worker-exclusion state, the current
//! probabilistic answer set (so the restored session warm-starts from the
//! exact floats the live one held), the accumulated trace and counters, and
//! the configuration state of the aggregator and the selection strategy —
//! RNG streams included, so even roulette-wheel strategies resume mid-draw.
//!
//! What is *not* stored is anything derivable: the masked active answer view
//! is rebuilt from the vote stream plus the exclusion set, the entropy
//! shortlist is rebuilt dirty and recomputes its cached values from the
//! restored posterior (the cache is bitwise-exact with respect to the
//! posterior, so recomputation cannot drift — see [`crate::shortlist`]),
//! and the cross-step guidance score cache is dropped outright and rebuilt
//! lazily: a missing entry is always evaluated exactly, never estimated, so
//! the restored session's first selection is a full re-score pass whose
//! winner is the same exact argmax the warm-cached live session picks (see
//! [`crate::guidance_cache`]).
//!
//! Snapshots are plain serde values: ship them through `serde_json` for the
//! service's crash-recovery path ([`crowdval-service`'s `Snapshot`/`Restore`
//! requests) or keep them in memory for cheap forking of what-if sessions.

use crate::metrics::ValidationTrace;
use crate::process::ProcessConfig;
use crate::strategy::StrategyState;
use crowdval_aggregation::{AggregatorState, ChurnTracker};
use crowdval_model::{
    AnswerSet, ExpertValidation, GroundTruth, LabelId, ObjectId, ProbabilisticAnswerSet, Vote,
    WorkerId,
};
use crowdval_spammer::{DetectorConfig, FaultyWorkerHandler, WorkerTrustLedger};
use crowdval_triage::TriageState;
use serde::{Deserialize, Serialize};

/// Version tag written into every snapshot; bumped when the layout changes
/// so a restore can reject snapshots from an incompatible build instead of
/// misinterpreting them. v2: [`ProcessConfig`] gained the `guidance_cache`
/// switch and [`crate::metrics::ValidationStep`] the per-step guidance
/// telemetry. v3: [`ProcessConfig`] gained the online-defense `trust`
/// thresholds and the snapshot the worker-trust ledger (evidence counters,
/// tombstone flags and defense telemetry). v4: incremental checkpoints —
/// [`SessionDelta`] (an event log replayed on top of an anchoring full
/// snapshot) joins the format; the full-snapshot layout itself is unchanged.
/// v5: agreement-prediction triage — [`ProcessConfig`] gained the `triage`
/// thresholds and the snapshot the churn tracker plus the triage state
/// (predictor weights, auto-finalize audit trail, counters).
pub const SNAPSHOT_FORMAT_VERSION: u32 = 5;

/// A complete, serializable checkpoint of a validation session. Produce one
/// with [`crate::session::ValidationSession::snapshot`], resume with
/// [`crate::session::ValidationSession::restore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Snapshot layout version ([`SNAPSHOT_FORMAT_VERSION`]).
    pub format_version: u32,
    /// The full vote stream seen so far (unmasked — exclusions live in
    /// `handler`).
    pub answers: AnswerSet,
    /// Expert validations collected so far.
    pub expert: ExpertValidation,
    /// Worker-exclusion state (§5.3), including the audit counter.
    pub handler: FaultyWorkerHandler,
    /// The online-defense trust ledger: per-worker evidence counters,
    /// tombstone flags and cumulative defense telemetry.
    pub trust: WorkerTrustLedger,
    /// The faulty-worker detector's thresholds.
    pub detector: DetectorConfig,
    /// Run-time options.
    pub config: ProcessConfig,
    /// Reference ground truth, when the session runs in evaluation mode.
    pub ground_truth: Option<GroundTruth>,
    /// The current probabilistic answer set — the warm-start seed of every
    /// post-restore aggregation.
    pub current: ProbabilisticAnswerSet,
    /// The validation trace accumulated so far.
    pub trace: ValidationTrace,
    /// Validations performed so far.
    pub iteration: usize,
    /// Votes absorbed through streaming ingestion so far.
    pub votes_ingested: usize,
    /// Corpus size at the last cold re-anchor (the doubling trigger).
    pub answers_at_last_cold: usize,
    /// Per-object posterior-churn EWMA (the triage churn feature).
    pub churn: ChurnTracker,
    /// Agreement-prediction triage state: predictor weights, auto-finalize
    /// audit trail and counters.
    pub triage: TriageState,
    /// The aggregator's configuration state.
    pub aggregator: AggregatorState,
    /// The selection strategy's configuration + mutable state.
    pub strategy: StrategyState,
}

/// One replayable session mutation, recorded in application order by the
/// session's write-ahead log ([`crate::session::ValidationSession::enable_delta_log`]).
///
/// Replay goes through the same public entry points the live session used,
/// so every derived state — EM trajectories, strategy RNG streams, trust
/// ledger evidence — evolves identically. `Select` is logged too: a
/// selection advances strategy RNG state even though it validates nothing,
/// and the recorded pick doubles as a replay integrity check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SessionEvent {
    /// A [`crate::session::ValidationSession::ingest`] batch.
    Ingest { votes: Vec<Vote> },
    /// A [`crate::session::ValidationSession::select_next`] call that
    /// consulted the strategy, with the object it picked.
    Select { picked: Option<ObjectId> },
    /// A [`crate::session::ValidationSession::integrate`] call.
    Integrate { object: ObjectId, label: LabelId },
    /// A [`crate::session::ValidationSession::revalidate`] call.
    Revalidate { object: ObjectId, label: LabelId },
    /// A [`crate::session::ValidationSession::set_worker_excluded`] override.
    SetWorkerExcluded { worker: WorkerId, excluded: bool },
}

/// An incremental checkpoint: the events applied since the anchoring full
/// [`SessionSnapshot`] was taken. Produce one with
/// [`crate::session::ValidationSession::delta_snapshot`]; resume with
/// [`crate::session::ValidationSession::restore_with_delta`], which replays
/// the events on the restored anchor and yields a session **bit-identical**
/// to the live one — same posterior floats, same trace, same RNG streams.
///
/// Taking a delta is `O(events since anchor)` instead of the full
/// snapshot's `O(corpus)`: at million-object scale that turns a checkpoint
/// stall into a cheap log clone. The anchor counters guard against replaying
/// a delta onto the wrong snapshot (a typed error, never silent divergence).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionDelta {
    /// Snapshot layout version ([`SNAPSHOT_FORMAT_VERSION`]).
    pub format_version: u32,
    /// `iteration` of the anchoring full snapshot.
    pub anchor_iteration: usize,
    /// `votes_ingested` of the anchoring full snapshot.
    pub anchor_votes_ingested: usize,
    /// Events applied since the anchor, in order.
    pub events: Vec<SessionEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_through_json() {
        use crate::strategy::EntropyBaseline;
        let synth = crowdval_sim::SyntheticConfig {
            num_objects: 10,
            ..crowdval_sim::SyntheticConfig::paper_default(21)
        }
        .generate();
        let session =
            crate::session::ValidationSessionBuilder::new(synth.dataset.answers().clone())
                .strategy(Box::new(EntropyBaseline))
                .build();
        let snapshot = session.snapshot().unwrap();
        assert_eq!(snapshot.format_version, SNAPSHOT_FORMAT_VERSION);
        let json = serde_json::to_string(&snapshot).unwrap();
        let reread: SessionSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snapshot, reread);
    }
}
