//! Uncertainty of a probabilistic answer set and the information gain of a
//! hypothetical validation (paper §4.2 and §5.2, Eq. 6–9).

use crowdval_aggregation::{Aggregator, ScoringMode};
use crowdval_model::{AnswerSet, ExpertValidation, ObjectId, ProbabilisticAnswerSet};

/// Total uncertainty `H(P) = Σ_o H(o)` (Eq. 7).
pub fn total_uncertainty(p: &ProbabilisticAnswerSet) -> f64 {
    p.uncertainty()
}

/// Conditional uncertainty `H(P | o) = Σ_l U(o, l) · H(P_l)` (Eq. 8), where
/// `P_l` is the probabilistic answer set obtained by re-running the
/// aggregation with the hypothetical expert validation `e(o) = l`.
///
/// Thin wrapper over [`crate::scoring::ScoringEngine::conditional_entropy_of`],
/// which owns the warm-started hypothesis evaluation (labels with negligible
/// probability are skipped there: they contribute almost nothing to the
/// expectation but would cost a full aggregation run each). Runs in
/// [`ScoringMode::Exact`]: these free functions are the reference
/// definitions of Eq. 8–9, so they keep full-corpus semantics; bulk scoring
/// goes through [`crate::scoring::ScoringEngine`], which defaults to the
/// delta-scoped mode.
pub fn conditional_entropy(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    current: &ProbabilisticAnswerSet,
    aggregator: &dyn Aggregator,
    object: ObjectId,
) -> f64 {
    crate::scoring::ScoringEngine::conditional_entropy_of(
        aggregator,
        answers,
        expert,
        current,
        object,
        ScoringMode::Exact,
    )
}

/// Information gain `IG(o) = H(P) − H(P | o)` (Eq. 9): the expected reduction
/// of the answer-set uncertainty if the expert validates `o`.
pub fn information_gain(
    answers: &AnswerSet,
    expert: &ExpertValidation,
    current: &ProbabilisticAnswerSet,
    aggregator: &dyn Aggregator,
    object: ObjectId,
) -> f64 {
    crate::scoring::ScoringEngine::information_gain_of(
        aggregator,
        answers,
        expert,
        current,
        object,
        ScoringMode::Exact,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_aggregation::IncrementalEm;
    use crowdval_model::{LabelId, WorkerId};

    /// Two workers disagree on object 0 and agree on object 1; object 2 has a
    /// lone answer.
    fn answers() -> AnswerSet {
        let mut n = AnswerSet::new(3, 2, 2);
        n.record_answer(ObjectId(0), WorkerId(0), LabelId(0))
            .unwrap();
        n.record_answer(ObjectId(0), WorkerId(1), LabelId(1))
            .unwrap();
        n.record_answer(ObjectId(1), WorkerId(0), LabelId(1))
            .unwrap();
        n.record_answer(ObjectId(1), WorkerId(1), LabelId(1))
            .unwrap();
        n.record_answer(ObjectId(2), WorkerId(0), LabelId(0))
            .unwrap();
        n
    }

    #[test]
    fn total_uncertainty_matches_assignment_entropy() {
        let p = ProbabilisticAnswerSet::uninformed(4, 2, 2);
        assert!((total_uncertainty(&p) - 4.0 * 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn validating_an_object_never_increases_expected_uncertainty_much() {
        let answers = answers();
        let expert = ExpertValidation::empty(3);
        let aggregator = IncrementalEm::default();
        let current = aggregator.conclude(&answers, &expert, None);
        for o in 0..3 {
            let h_cond = conditional_entropy(&answers, &expert, &current, &aggregator, ObjectId(o));
            // Conditioning on a validation pins at least that object's
            // distribution, so the expected entropy should not exceed the
            // current entropy by more than a small slack (re-estimating the
            // confusion matrices can slightly shift other objects).
            assert!(
                h_cond <= current.uncertainty() + 0.05,
                "object {o}: H(P|o) = {h_cond} > H(P) = {}",
                current.uncertainty()
            );
        }
    }

    #[test]
    fn information_gain_is_positive_for_contested_objects() {
        let answers = answers();
        let expert = ExpertValidation::empty(3);
        let aggregator = IncrementalEm::default();
        let current = aggregator.conclude(&answers, &expert, None);
        let ig_contested = information_gain(&answers, &expert, &current, &aggregator, ObjectId(0));
        assert!(
            ig_contested > 0.0,
            "contested object should have positive gain: {ig_contested}"
        );
    }

    #[test]
    fn validated_objects_have_negligible_information_gain() {
        let answers = answers();
        let mut expert = ExpertValidation::empty(3);
        expert.set(ObjectId(0), LabelId(0));
        let aggregator = IncrementalEm::default();
        let current = aggregator.conclude(&answers, &expert, None);
        let ig = information_gain(&answers, &expert, &current, &aggregator, ObjectId(0));
        // Re-running the warm-started EM can wander by up to its convergence
        // tolerance, so "negligible" means well below one bit rather than
        // exactly zero.
        assert!(ig.abs() < 0.01, "already-validated object gained {ig}");
    }
}
