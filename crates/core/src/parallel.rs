//! Parallel scoring of candidate objects (paper §5.4, "Parallelization").
//!
//! The information gain and the expected spammer detections of different
//! candidate objects are independent, so they can be computed in parallel.
//! The helper below keeps the strategies free of threading details and makes
//! the parallel/serial choice explicit (the Fig. 4 experiment compares both).

use crowdval_model::ObjectId;
use rayon::prelude::*;

/// Computes `score(o)` for every candidate, either sequentially or in
/// parallel, preserving the candidate order in the result.
pub fn score_candidates<F>(
    candidates: &[ObjectId],
    parallel: bool,
    score: F,
) -> Vec<(ObjectId, f64)>
where
    F: Fn(ObjectId) -> f64 + Sync,
{
    map_candidates(candidates, parallel, score)
}

/// [`score_candidates`] generalized over the per-candidate result type —
/// the lazy selection path fans out `(score, em_iterations)` pairs for the
/// candidates it must evaluate unconditionally.
pub fn map_candidates<T, F>(candidates: &[ObjectId], parallel: bool, f: F) -> Vec<(ObjectId, T)>
where
    T: Send,
    F: Fn(ObjectId) -> T + Sync,
{
    if parallel {
        candidates.par_iter().map(|&o| (o, f(o))).collect()
    } else {
        candidates.iter().map(|&o| (o, f(o))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_produce_identical_results_in_order() {
        let candidates: Vec<ObjectId> = (0..100).map(ObjectId).collect();
        let score = |o: ObjectId| (o.index() as f64).sqrt();
        let serial = score_candidates(&candidates, false, score);
        let parallel = score_candidates(&candidates, true, score);
        assert_eq!(serial, parallel);
        assert_eq!(serial.len(), 100);
        assert_eq!(serial[4], (ObjectId(4), 2.0));
    }

    #[test]
    fn empty_candidate_lists_are_fine() {
        let scores = score_candidates(&[], true, |_| 1.0);
        assert!(scores.is_empty());
    }
}
