//! Guided validation of crowd answers — the primary contribution of
//! *"Minimizing Efforts in Validating Crowd Answers"* (SIGMOD 2015).
//!
//! The crate wires the aggregation and spammer-detection substrates into the
//! pay-as-you-go validation framework of the paper's §3–§5:
//!
//! * [`uncertainty`] — entropy of a probabilistic answer set, conditional
//!   entropy given a hypothetical validation, and information gain;
//! * [`scoring`] — the shared hypothesis-scoring engine of the select step's
//!   hot path: entropy pre-filter, warm-started "what-if" aggregation and
//!   parallel fan-out (§5.2, §5.4);
//! * [`guidance_cache`] — cross-step score caching with dirty-region
//!   invalidation and lazy bound-based (CELF-style) selection, the §5.4
//!   view-maintenance principle applied *across* selection steps;
//! * [`strategy`] — the guidance strategies: random, highest-entropy
//!   baseline, uncertainty-driven (information gain), worker-driven
//!   (expected spammer detections) and the dynamically weighted hybrid;
//! * [`session`] — the incremental validation session (Algorithm 1 as an
//!   event-driven core): streaming vote ingestion with arrival-centric
//!   delta re-aggregation, plus the interactive `select_next` / `integrate`
//!   loop;
//! * [`process`] — the batch facade over the session ("ingest everything,
//!   then validate"), preserving the historical `ValidationProcess` API;
//! * [`shortlist`] — the incrementally invalidated per-object entropy cache
//!   behind the §5.4 pre-filter;
//! * [`confirmation`] — the leave-one-out confirmation check that catches
//!   erroneous expert validations (§5.5);
//! * [`partition`] — sparse-matrix partitioning of large answer matrices
//!   (§5.4);
//! * [`cost`] — the expert-vs-crowd cost model and budget/time allocation
//!   analysis (§6.8);
//! * [`effort`] — the formalization of the effort-minimization problem and a
//!   greedy approximation of its restricted (joint-entropy) variant
//!   (Appendix E);
//! * [`metrics`] — validation traces and the evaluation metrics
//!   (effort, precision, precision improvement).

pub mod confirmation;
pub mod cost;
pub mod effort;
pub mod goal;
pub mod guidance_cache;
pub mod metrics;
pub mod parallel;
pub mod partition;
pub mod process;
pub mod scoring;
pub mod session;
pub mod shortlist;
pub mod snapshot;
pub mod strategy;
pub mod uncertainty;

pub use confirmation::ConfirmationCheck;
pub use cost::{BudgetAllocation, CostModel, CostPoint};
pub use effort::{greedy_max_entropy_subset, joint_entropy_upper_bound};
pub use goal::ValidationGoal;
pub use guidance_cache::{GuidanceCache, GuidanceTelemetry, ScoreFamily};
pub use metrics::{ValidationStep, ValidationTrace};
pub use partition::{partition_answer_matrix, Block, Partition};
pub use process::{ExpertSource, ProcessConfig, ValidationProcess, ValidationProcessBuilder};
pub use scoring::{LazySelection, ScoringContext, ScoringEngine, ScoringMode};
pub use session::{SessionUpdate, ValidationSession, ValidationSessionBuilder};
pub use shortlist::EntropyShortlist;
// The triage vocabulary, re-exported so session callers need not depend on
// `crowdval-triage` directly.
pub use crowdval_triage::{
    AuditRecord, ConvergencePredictor, TriageConfig, TriageCounters, TriageDecision,
    TriageFeatures, TriageState, TriageVerdict,
};
pub use snapshot::{SessionDelta, SessionEvent, SessionSnapshot, SNAPSHOT_FORMAT_VERSION};
pub use strategy::{
    EntropyBaseline, HybridStrategy, RandomSelection, SelectionStrategy, StrategyContext,
    StrategyKind, StrategyState, UncertaintyDriven, ValidationObservation, WorkerDriven,
};
pub use uncertainty::{conditional_entropy, information_gain, total_uncertainty};
