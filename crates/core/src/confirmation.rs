//! Confirmation check for erroneous expert validations (paper §5.5).
//!
//! The check runs every few iterations and, for every validated object `o`,
//! rebuilds the deterministic assignment *without* the expert feedback on `o`
//! (leave-one-out). If that assignment disagrees with the expert's label for
//! `o`, the validation is flagged as potentially erroneous — the paper's
//! "case (2)": the crowd is wrong and the expert wrongly confirmed the
//! aggregated answer, or more generally the validation contradicts everything
//! else we believe. Flagged objects are handed back to the expert for
//! reconsideration.

use crate::scoring::{ScoringContext, ScoringEngine};
use crowdval_aggregation::Aggregator;
use crowdval_model::{AnswerSet, ExpertValidation, ObjectId, ProbabilisticAnswerSet};
use crowdval_spammer::SpammerDetector;
use serde::{Deserialize, Serialize};

/// Configuration and execution of the §5.5 confirmation check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfirmationCheck {
    /// Run the check after every `interval` validations (the paper triggers
    /// it after each 1 % of total validations; the process translates that
    /// into an absolute interval).
    pub interval: usize,
}

impl ConfirmationCheck {
    /// A check that runs every `interval` validations.
    pub fn every(interval: usize) -> Self {
        Self {
            interval: interval.max(1),
        }
    }

    /// Whether the check is due after the `iteration`-th validation.
    pub fn is_due(&self, iteration: usize) -> bool {
        iteration > 0 && iteration.is_multiple_of(self.interval)
    }

    /// Runs the leave-one-out check over all validated objects and returns
    /// the ones whose validation looks erroneous. Serial convenience wrapper
    /// over [`ConfirmationCheck::flag_suspicious_in`].
    pub fn flag_suspicious(
        &self,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        current: &ProbabilisticAnswerSet,
        aggregator: &dyn Aggregator,
    ) -> Vec<ObjectId> {
        let detector = SpammerDetector::default();
        self.flag_suspicious_in(&ScoringContext {
            answers,
            expert,
            current,
            aggregator,
            detector: &detector,
            parallel: false,
            entropy_cache: None,
        })
    }

    /// Runs the leave-one-out check through the shared scoring engine: each
    /// per-object re-aggregation is the same warm-started hypothesis
    /// evaluation as candidate scoring, and fans out across threads when
    /// `ctx.parallel` is set.
    pub fn flag_suspicious_in(&self, ctx: &ScoringContext<'_>) -> Vec<ObjectId> {
        ScoringEngine::exhaustive().leave_one_out_disagreements(ctx)
    }
}

impl Default for ConfirmationCheck {
    fn default() -> Self {
        Self::every(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdval_aggregation::{Aggregator, IncrementalEm};
    use crowdval_model::{LabelId, ObjectId};
    use crowdval_sim::SyntheticConfig;

    #[test]
    fn interval_scheduling() {
        let check = ConfirmationCheck::every(5);
        assert!(!check.is_due(0));
        assert!(!check.is_due(4));
        assert!(check.is_due(5));
        assert!(check.is_due(10));
        // Zero interval is clamped to 1.
        assert!(ConfirmationCheck::every(0).is_due(1));
        assert_eq!(ConfirmationCheck::default().interval, 1);
    }

    #[test]
    fn correct_validations_are_not_flagged_and_flipped_ones_are() {
        // A reliable crowd: 15 workers at 80 % accuracy. A validation that
        // agrees with the truth should survive the leave-one-out check; a
        // deliberately flipped validation should be flagged.
        let synth = SyntheticConfig {
            num_objects: 30,
            num_workers: 15,
            reliability: 0.8,
            mix: crowdval_sim::PopulationMix::all_reliable(),
            ..SyntheticConfig::paper_default(91)
        }
        .generate();
        let answers = synth.dataset.answers();
        let truth = synth.dataset.ground_truth();
        let aggregator = IncrementalEm::default();

        let mut expert = ExpertValidation::empty(30);
        for o in 0..6 {
            expert.set(ObjectId(o), truth.label(ObjectId(o)));
        }
        // Flip one validation to the wrong label.
        let wrong_object = ObjectId(3);
        let wrong_label = LabelId(1 - truth.label(wrong_object).index());
        expert.set(wrong_object, wrong_label);

        let current = aggregator.conclude(answers, &expert, None);
        let flagged =
            ConfirmationCheck::every(1).flag_suspicious(answers, &expert, &current, &aggregator);
        assert!(
            flagged.contains(&wrong_object),
            "flipped validation not flagged: {flagged:?}"
        );
        // Correct validations on objects the crowd also gets right stay
        // unflagged.
        for o in [ObjectId(0), ObjectId(1), ObjectId(2)] {
            if truth.precision(&current.instantiate()) > 0.9 {
                assert!(
                    !flagged.contains(&o) || expert.get(o) != Some(truth.label(o)),
                    "correct validation for {o} was flagged"
                );
            }
        }
    }

    #[test]
    fn no_validations_means_nothing_to_flag() {
        let synth = SyntheticConfig::paper_default(92).generate();
        let answers = synth.dataset.answers();
        let aggregator = IncrementalEm::default();
        let expert = ExpertValidation::empty(answers.num_objects());
        let current = aggregator.conclude(answers, &expert, None);
        let flagged =
            ConfirmationCheck::default().flag_suspicious(answers, &expert, &current, &aggregator);
        assert!(flagged.is_empty());
    }
}
