//! The shared hypothesis-scoring engine of the guidance hot path
//! (paper §5.2 and §5.4).
//!
//! Evaluating a guidance strategy means asking, for many candidate objects at
//! once, *"what would happen if the expert validated this object?"* — and
//! answering each hypothesis with a full (warm-started) aggregation run. This
//! module centralizes that hot path so every strategy shares one
//! implementation of its four ingredients:
//!
//! 1. **Entropy pre-filter** (§5.4 "Reducing the number of considered
//!    objects"): candidates are ranked by their current label entropy and
//!    only the top [`ScoringEngine::shortlist_limit`] enter the expensive
//!    evaluation. An object whose distribution is already a point mass
//!    cannot yield information gain, so the filter is loss-free in the limit
//!    and a large constant-factor win in practice. Per-object entropies are
//!    computed once per selection step (and the total uncertainty `H(P)` is
//!    hoisted out of the per-candidate loop — it is candidate-independent),
//!    and the entropy sort uses [`f64::total_cmp`] so a NaN entropy can
//!    never silently destabilize the shortlist order.
//! 2. **Warm-started hypothesis aggregation** (§5.2 Eq. 8–9, §4.1): each
//!    hypothesis `e(o) = l` is evaluated by re-running the aggregation via
//!    [`Aggregator::conclude_hypothesis`], reusing the confusion matrices
//!    and priors of the current probabilistic answer set
//!    (`C⁰_s = C^q_{s−1}`, the view-maintenance principle) instead of
//!    restarting EM from scratch. The hypothesis is a borrowed
//!    [`HypothesisOverlay`] — the real validations plus one pinned
//!    `(object, label)` pair — so the fan-out never clones the
//!    `ExpertValidation`. Labels whose current probability is negligible
//!    ([`NEGLIGIBLE_WEIGHT`]) are skipped — they contribute almost nothing
//!    to the expectation but would cost a full aggregation run each.
//! 3. **Delta propagation** ([`ScoringMode`], §5.4 "view maintenance"
//!    applied within one aggregation run): in the default
//!    [`ScoringMode::Delta`], the warm-started evaluation first
//!    re-estimates only the *neighborhood* of the pinned object — the dirty
//!    set is seeded with the workers who answered it, their confusion rows
//!    are re-estimated, the E-step is re-run over the objects those workers
//!    touched, and the frontier expands until assignment changes fall below
//!    the EM tolerance — then an Aitken-accelerated full-corpus polish
//!    certifies the *same* convergence criterion as the exact path. This
//!    agrees with the exact path within the EM tolerance (property-tested)
//!    and produces the same selection order on the paper-default scenarios;
//!    [`ScoringMode::Exact`] is the escape hatch for callers that need the
//!    full-corpus reference trajectory — e.g. experiments that diff
//!    absolute scores across aggregators. Two situations always take the
//!    exact path regardless of the configured mode: the §5.5 leave-one-out
//!    confirmation sweep (which *removes* a validation rather than pinning
//!    one, so it runs via [`Aggregator::conclude_warm`]), and hypothesis
//!    evaluations with fewer than two validation anchors, where the
//!    Dawid–Skene label orientation is still fragile.
//! 4. **Parallel fan-out** (§5.4 "Parallelization"): per-candidate scores
//!    are independent, so the engine distributes them across threads with
//!    [`crate::parallel::score_candidates`], preserving candidate order so
//!    serial and parallel scoring produce identical rankings. Each worker
//!    thread keeps one warm EM workspace, so the fan-out performs zero heap
//!    allocations per EM iteration.
//!
//! The concrete scores built on top of these primitives:
//!
//! * **Information gain** `IG(o) = H(P) − H(P | o)` (Eq. 9–10) with
//!   `H(P | o) = Σ_l U(o, l) · H(P_l)` (Eq. 8) — the uncertainty-driven
//!   strategy and the hybrid's uncertainty branch;
//! * **Expected spammer detections** `R(W | o) = Σ_l U(o, l) · R(W | o = l)`
//!   (Eq. 12–14) — the worker-driven strategy and the hybrid's worker
//!   branch;
//! * **Leave-one-out disagreement** (§5.5) — the confirmation check's
//!   re-aggregation without one validation at a time, which is the same
//!   warm-started hypothesis evaluation with the hypothesis *removed*.

use crate::guidance_cache::{CachedScore, GuidanceCache, GuidanceTelemetry, ScoreFamily};
use crate::parallel::score_candidates;
use crate::shortlist::EntropyShortlist;
use crate::strategy::argmax_object;
use crowdval_aggregation::Aggregator;
pub use crowdval_aggregation::ScoringMode;
use crowdval_model::{
    AnswerSet, ExpertValidation, HypothesisOverlay, LabelId, ObjectId, ProbabilisticAnswerSet,
};
use crowdval_spammer::SpammerDetector;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Labels whose current assignment probability is at or below this weight are
/// skipped during hypothesis evaluation (§5.2: they contribute almost nothing
/// to the expectation but would cost one aggregation run each).
///
/// This is the *single* negligibility threshold of the scoring hot path: both
/// the conditional-entropy expectation (Eq. 8) and the expected-detection
/// expectation (Eq. 13) skip labels by this constant, so the two scores agree
/// on which hypotheses are worth an aggregation run.
pub const NEGLIGIBLE_WEIGHT: f64 = 1e-6;

/// Default width of the entropy pre-filter shortlist.
pub const DEFAULT_SHORTLIST: usize = 32;

/// Result of a lazy (cache-aware) selection: the picked object plus how the
/// step was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LazySelection {
    /// The exact argmax, `None` when there were no candidates.
    pub selected: Option<ObjectId>,
    /// How many candidates were evaluated exactly vs served from the cache.
    pub telemetry: GuidanceTelemetry,
}

/// Argmax accumulator mirroring [`argmax_object`]'s comparison exactly:
/// NaN scores act as `-∞`, ties break toward the smaller object id.
fn consider(best: &mut Option<(ObjectId, f64)>, o: ObjectId, score: f64) {
    let s = if score.is_nan() {
        f64::NEG_INFINITY
    } else {
        score
    };
    match *best {
        None => *best = Some((o, s)),
        Some((bo, bs)) => {
            if s > bs || (s == bs && o < bo) {
                *best = Some((o, s));
            }
        }
    }
}

/// Everything the engine needs to evaluate hypotheses against the current
/// validation state. Borrowed wholesale from the validation process (or from
/// a [`crate::strategy::StrategyContext`] via
/// [`crate::strategy::StrategyContext::scoring`]).
pub struct ScoringContext<'a> {
    /// The answer set used for aggregation (answers of excluded workers are
    /// already filtered out).
    pub answers: &'a AnswerSet,
    /// Expert validations collected so far.
    pub expert: &'a ExpertValidation,
    /// The current probabilistic answer set — the warm-start seed for every
    /// hypothesis evaluation.
    pub current: &'a ProbabilisticAnswerSet,
    /// The aggregator that realizes the *conclude* step.
    pub aggregator: &'a dyn Aggregator,
    /// The faulty-worker detector (with its thresholds).
    pub detector: &'a SpammerDetector,
    /// Whether per-candidate scoring may use multiple threads.
    pub parallel: bool,
    /// Incrementally maintained per-object entropies for the pre-filter
    /// (§5.4). `None` recomputes entropies from `current` on every call; the
    /// streaming session passes its refreshed [`EntropyShortlist`] so the
    /// pre-filter re-ranks from cached values that are bit-identical to the
    /// from-scratch computation.
    pub entropy_cache: Option<&'a EntropyShortlist>,
}

/// Configuration-carrying engine for the select→conclude hot path. Cheap to
/// copy; strategies embed one each and the validation process routes the
/// confirmation check through one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoringEngine {
    /// Upper bound on the number of candidates whose hypothesis score is
    /// evaluated exactly; `None` evaluates every candidate.
    shortlist_limit: Option<usize>,
    /// How each hypothesis aggregation is scoped (delta-propagating by
    /// default, [`ScoringMode::Exact`] as the reference escape hatch).
    mode: ScoringMode,
}

impl Default for ScoringEngine {
    fn default() -> Self {
        Self {
            shortlist_limit: Some(DEFAULT_SHORTLIST),
            mode: ScoringMode::default(),
        }
    }
}

impl ScoringEngine {
    /// Engine with the default entropy pre-filter ([`DEFAULT_SHORTLIST`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine that evaluates every candidate exactly (used by experiments
    /// that need the full ranking, e.g. the i-EM guidance-consistency study).
    pub fn exhaustive() -> Self {
        Self {
            shortlist_limit: None,
            mode: ScoringMode::default(),
        }
    }

    /// Engine with a custom pre-filter width.
    pub fn with_shortlist(limit: usize) -> Self {
        Self {
            shortlist_limit: Some(limit),
            mode: ScoringMode::default(),
        }
    }

    /// The same engine with an explicit [`ScoringMode`].
    pub fn with_mode(mut self, mode: ScoringMode) -> Self {
        self.mode = mode;
        self
    }

    /// The configured pre-filter width (`None` = exhaustive).
    pub fn shortlist_limit(&self) -> Option<usize> {
        self.shortlist_limit
    }

    /// The configured hypothesis-scoping mode.
    pub fn mode(&self) -> ScoringMode {
        self.mode
    }

    // -----------------------------------------------------------------------
    // (a) entropy pre-filter
    // -----------------------------------------------------------------------

    /// Returns the candidates that survive the entropy pre-filter: the
    /// `shortlist_limit` candidates with the highest current label entropy
    /// (ties broken toward the smaller object id, preserving determinism).
    ///
    /// Entropies are computed once per call and sorted with
    /// [`f64::total_cmp`], so the order is total even if an entropy is NaN
    /// (NaNs sort below every real entropy instead of short-circuiting the
    /// comparator).
    pub fn shortlist(
        &self,
        current: &ProbabilisticAnswerSet,
        candidates: &[ObjectId],
    ) -> Vec<ObjectId> {
        self.shortlist_by(candidates, |o| current.object_uncertainty(o))
    }

    /// [`ScoringEngine::shortlist`] reading entropies from a context: the
    /// cached values when an [`EntropyShortlist`] is attached (bit-identical
    /// to the direct computation — see the cache's invariants), the direct
    /// computation otherwise.
    pub fn shortlist_in(&self, ctx: &ScoringContext<'_>, candidates: &[ObjectId]) -> Vec<ObjectId> {
        match ctx.entropy_cache {
            Some(cache) => self.shortlist_by(candidates, |o| cache.entropy(o)),
            None => self.shortlist(ctx.current, candidates),
        }
    }

    fn shortlist_by(
        &self,
        candidates: &[ObjectId],
        entropy_of: impl Fn(ObjectId) -> f64,
    ) -> Vec<ObjectId> {
        match self.shortlist_limit {
            Some(0) => Vec::new(),
            Some(limit) if candidates.len() > limit => {
                // Cache each candidate's entropy once; the ordering must not
                // re-invoke the entropy source per comparison.
                let mut by_entropy: Vec<(ObjectId, f64)> =
                    candidates.iter().map(|&o| (o, entropy_of(o))).collect();
                // The comparator is a total order even on NaN entropies
                // (`total_cmp`; NaNs sort below every real entropy) and has
                // no equal elements (the object-id tie-break is unique), so
                // partitioning the top `limit` first and sorting only the
                // kept prefix selects bitwise the same shortlist as the full
                // sort did — in O(n + limit log limit) instead of
                // O(n log n).
                let cmp = |a: &(ObjectId, f64), b: &(ObjectId, f64)| {
                    b.1.total_cmp(&a.1).then(a.0.cmp(&b.0))
                };
                by_entropy.select_nth_unstable_by(limit - 1, cmp);
                by_entropy.truncate(limit);
                by_entropy.sort_unstable_by(cmp);
                by_entropy.into_iter().map(|(o, _)| o).collect()
            }
            _ => candidates.to_vec(),
        }
    }

    // -----------------------------------------------------------------------
    // (b) warm-started hypothesis aggregation
    // -----------------------------------------------------------------------

    /// Evaluates a single hypothesis `e(object) = label`: re-runs the
    /// aggregation with the hypothetical validation overlaid (no
    /// `ExpertValidation` clone), warm-starting from `current` and scoped by
    /// `mode`.
    pub fn evaluate_hypothesis(
        aggregator: &dyn Aggregator,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        current: &ProbabilisticAnswerSet,
        object: ObjectId,
        label: LabelId,
        mode: ScoringMode,
    ) -> ProbabilisticAnswerSet {
        let hypothesis = HypothesisOverlay::new(expert, object, label);
        aggregator.conclude_hypothesis(answers, &hypothesis, current, mode)
    }

    /// Conditional uncertainty `H(P | o) = Σ_l U(o, l) · H(P_l)` (Eq. 8),
    /// the expectation running over the plausible expert answers weighted by
    /// the current assignment probabilities.
    pub fn conditional_entropy_of(
        aggregator: &dyn Aggregator,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        current: &ProbabilisticAnswerSet,
        object: ObjectId,
        mode: ScoringMode,
    ) -> f64 {
        Self::conditional_entropy_counting(aggregator, answers, expert, current, object, mode).0
    }

    /// [`ScoringEngine::conditional_entropy_of`] plus the number of EM
    /// iterations its hypothesis evaluations spent — the telemetry the lazy
    /// selection path reports per step.
    pub fn conditional_entropy_counting(
        aggregator: &dyn Aggregator,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        current: &ProbabilisticAnswerSet,
        object: ObjectId,
        mode: ScoringMode,
    ) -> (f64, usize) {
        let mut expected = 0.0;
        let mut em_iterations = 0;
        for l in 0..answers.num_labels() {
            let label = LabelId(l);
            let weight = current.assignment().prob(object, label);
            if weight <= NEGLIGIBLE_WEIGHT {
                continue;
            }
            let hypothesis = Self::evaluate_hypothesis(
                aggregator, answers, expert, current, object, label, mode,
            );
            em_iterations += hypothesis.em_iterations();
            expected += weight * hypothesis.uncertainty();
        }
        (expected, em_iterations)
    }

    /// Information gain `IG(o) = H(P) − H(P | o)` (Eq. 9): the expected
    /// reduction of the answer-set uncertainty if the expert validates `o`.
    ///
    /// Note for bulk scoring: `H(P)` is candidate-independent —
    /// [`ScoringEngine::information_gain_scores`] hoists it out of the
    /// per-candidate loop instead of calling this per candidate.
    pub fn information_gain_of(
        aggregator: &dyn Aggregator,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        current: &ProbabilisticAnswerSet,
        object: ObjectId,
        mode: ScoringMode,
    ) -> f64 {
        current.uncertainty()
            - Self::conditional_entropy_of(aggregator, answers, expert, current, object, mode)
    }

    /// Expected number of faulty-worker detections from validating `object`:
    /// `R(W | o) = Σ_l U(o, l) · R(W | o = l)` (Eq. 13). Labels are skipped
    /// by the same [`NEGLIGIBLE_WEIGHT`] threshold as the conditional
    /// entropy, so both expectations agree on which hypotheses are
    /// evaluated.
    pub fn expected_detections_of(
        detector: &SpammerDetector,
        answers: &AnswerSet,
        expert: &ExpertValidation,
        current: &ProbabilisticAnswerSet,
        object: ObjectId,
    ) -> f64 {
        let priors = current.priors();
        let mut expected = 0.0;
        for l in 0..answers.num_labels() {
            let label = LabelId(l);
            let weight = current.assignment().prob(object, label);
            if weight <= NEGLIGIBLE_WEIGHT {
                continue;
            }
            let detections =
                detector.expected_detections_with(answers, expert, priors, object, label);
            expected += weight * detections as f64;
        }
        expected
    }

    // -----------------------------------------------------------------------
    // (c) parallel fan-out over candidates
    // -----------------------------------------------------------------------

    /// Information gain of every shortlisted candidate, in shortlist order.
    /// Serial and parallel execution produce identical results. The total
    /// uncertainty `H(P)` is computed once for the whole sweep, not per
    /// candidate.
    pub fn information_gain_scores(
        &self,
        ctx: &ScoringContext<'_>,
        candidates: &[ObjectId],
    ) -> Vec<(ObjectId, f64)> {
        let shortlist = self.shortlist_in(ctx, candidates);
        let total_uncertainty = ctx.current.uncertainty();
        let mode = self.mode;
        score_candidates(&shortlist, ctx.parallel, |o| {
            total_uncertainty
                - Self::conditional_entropy_of(
                    ctx.aggregator,
                    ctx.answers,
                    ctx.expert,
                    ctx.current,
                    o,
                    mode,
                )
        })
    }

    /// Expected detections of every candidate, in candidate order. The
    /// entropy pre-filter is *not* applied: a certain object can still expose
    /// faulty workers (Eq. 13 weights by the current distribution, not its
    /// entropy).
    pub fn detection_scores(
        &self,
        ctx: &ScoringContext<'_>,
        candidates: &[ObjectId],
    ) -> Vec<(ObjectId, f64)> {
        score_candidates(candidates, ctx.parallel, |o| {
            Self::expected_detections_of(ctx.detector, ctx.answers, ctx.expert, ctx.current, o)
        })
    }

    // -----------------------------------------------------------------------
    // (d) lazy bound-based selection over the guidance cache
    // -----------------------------------------------------------------------

    /// Selects the information-gain argmax over `candidates`, serving scores
    /// from `cache` where possible (see [`crate::guidance_cache`] for the
    /// exactness argument). With `cache: None` this is exactly the eager
    /// path: score the whole shortlist, take the argmax.
    ///
    /// The cached path picks **the same object, bitwise**, as the eager
    /// path: entries at the current cache version are values an evaluation
    /// against the current state would reproduce; stale entries only order
    /// the exact re-evaluations (descending bound, CELF-style) and justify
    /// stopping once the best fresh score strictly dominates the next stale
    /// bound (per-age slack from [`stale_bound_margin`]); the argmax comparison
    /// (NaN as `-∞`, ties to the smaller id) mirrors the eager
    /// [`crate::strategy::argmax_object`].
    pub fn select_information_gain(
        &self,
        ctx: &ScoringContext<'_>,
        candidates: &[ObjectId],
        cache: Option<&RefCell<GuidanceCache>>,
    ) -> LazySelection {
        let Some(cell) = cache else {
            let scores = self.information_gain_scores(ctx, candidates);
            return LazySelection {
                selected: argmax_object(&scores),
                telemetry: GuidanceTelemetry {
                    evaluated: scores.len(),
                    ..GuidanceTelemetry::default()
                },
            };
        };
        let shortlist = self.shortlist_in(ctx, candidates);
        let total_uncertainty = ctx.current.uncertainty();
        // Per-step drift slack, scaled to the last observed best score
        // (None until a reference exists: then nothing is skipped).
        let margin = cell.borrow().stale_bound_margin(ctx.current.num_objects());
        let mode = self.mode;
        let mut cache = cell.borrow_mut();
        let mut telemetry = GuidanceTelemetry::default();
        let mut best: Option<(ObjectId, f64)> = None;
        // Exact entries stand in for evaluations outright. Candidates with
        // no usable entry (missing, invalidated, NaN, or no margin
        // reference) must be evaluated unconditionally — they go through
        // the parallel fan-out like the eager path, since no skip decision
        // depends on their order. The rest queue with their aged stale
        // bound (`value + age · margin`) for the serial lazy loop, whose
        // early termination is inherently sequential.
        let mut must_evaluate: Vec<ObjectId> = Vec::new();
        let mut pending: Vec<(ObjectId, f64)> = Vec::new();
        for &o in &shortlist {
            match cache.lookup(ScoreFamily::InformationGain, o) {
                CachedScore::Exact(v) => {
                    telemetry.served_from_cache += 1;
                    consider(&mut best, o, v);
                }
                CachedScore::Stale { value, age } if !value.is_nan() && margin.is_some() => {
                    pending.push((o, value + age as f64 * margin.unwrap_or(0.0)));
                }
                _ => must_evaluate.push(o),
            }
        }
        for (o, (conditional, em_iterations)) in
            crate::parallel::map_candidates(&must_evaluate, ctx.parallel, |o| {
                Self::conditional_entropy_counting(
                    ctx.aggregator,
                    ctx.answers,
                    ctx.expert,
                    ctx.current,
                    o,
                    mode,
                )
            })
        {
            let score = total_uncertainty - conditional;
            cache.store(ScoreFamily::InformationGain, o, score);
            telemetry.evaluated += 1;
            telemetry.em_iterations += em_iterations;
            consider(&mut best, o, score);
        }
        pending.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        // Two tripwires guard the diminishing-returns assumption the stale
        // bounds rest on. The near-chance crowd can reorganize around a
        // basin boundary and inflate every hypothesis's gain at once — a
        // change no dirty-region diff sees coming. (1) The *reorganization
        // ceiling*: in the diminishing regime the per-step best only
        // declines, so skips are permitted only while the running best
        // stays under the last step's best plus drift slack; a best beyond
        // the ceiling turns the step into a full re-score. (2) The
        // *self-violation check*: a freshly evaluated candidate landing
        // above its own aged bound proves the bounds are broken this step,
        // so the remaining candidates are all evaluated instead of skipped.
        // A best that the stale landscape cannot explain — above every
        // stale bound, or above the last step's best, beyond drift slack —
        // is itself evidence of reorganization: domination becomes
        // suspiciously easy exactly when the bounds are broken. And an
        // information gain beyond `ln(labels)` exceeds what resolving the
        // candidate's *own* entropy can yield, proving the validation would
        // cascade through other objects (the near-chance crowd's
        // basin-boundary regime) — long-range coupling that no dirty-region
        // diff can see coming, so no skip is trusted there at all.
        let max_stale_bound = pending
            .iter()
            .map(|&(_, b)| b)
            .filter(|b| b.is_finite())
            .fold(f64::NEG_INFINITY, f64::max);
        let cascade_cap = (ctx.answers.num_labels().max(2) as f64).ln();
        let ceiling = margin.and_then(|m| {
            cache
                .trusted_best_ceiling(m)
                .map(|c| c.min(max_stale_bound + m).min(cascade_cap))
        });
        let mut bounds_trusted = true;
        let mut stop_at = pending.len();
        for (i, &(o, bound)) in pending.iter().enumerate() {
            if let (Some((_, best_score)), Some(ceiling)) = (best, ceiling) {
                if bounds_trusted
                    && bound.is_finite()
                    && best_score > bound
                    && best_score <= ceiling
                {
                    // Every remaining candidate's bound is at most `bound`:
                    // none can reach the current best.
                    stop_at = i;
                    break;
                }
            }
            let (conditional, em_iterations) = Self::conditional_entropy_counting(
                ctx.aggregator,
                ctx.answers,
                ctx.expert,
                ctx.current,
                o,
                mode,
            );
            let score = total_uncertainty - conditional;
            if bound.is_finite() && score > bound {
                bounds_trusted = false;
            }
            cache.store(ScoreFamily::InformationGain, o, score);
            telemetry.evaluated += 1;
            telemetry.em_iterations += em_iterations;
            consider(&mut best, o, score);
        }
        telemetry.served_from_cache += pending.len() - stop_at;
        if std::env::var_os("CROWDVAL_GUIDANCE_DEBUG").is_some() {
            eprintln!(
                "select: best={:?} margin={margin:?} ceiling={ceiling:?} \
                 cascade={cascade_cap:.3} pending={} stop_at={stop_at} trusted={bounds_trusted}",
                best.map(|(_, s)| s),
                pending.len(),
            );
        }
        if let Some((_, best_score)) = best {
            cache.note_best_ig(best_score);
        }
        cache.record_step(telemetry);
        if std::env::var_os("CROWDVAL_GUIDANCE_PARANOID").is_some() {
            // Verifier mode: every skipped candidate's fresh score must
            // actually lose to the selected best — a violation is reported
            // with its magnitude (so the drift threshold / margin pair can
            // be recalibrated) and then **panics**, making any run under
            // this flag a hard proof of the skip decisions it executed.
            if let Some((bo, bs)) = best {
                for &(o, bound) in &pending[stop_at..] {
                    let (conditional, _) = Self::conditional_entropy_counting(
                        ctx.aggregator,
                        ctx.answers,
                        ctx.expert,
                        ctx.current,
                        o,
                        mode,
                    );
                    let fresh = total_uncertainty - conditional;
                    assert!(
                        !(fresh > bs || (fresh == bs && o < bo)),
                        "PARANOID: skipped {o} fresh {fresh:.6} beats best {bo} {bs:.6} \
                         (aged bound {bound:.6}, entry {:?}, rise {:+.6})",
                        cache.lookup(ScoreFamily::InformationGain, o),
                        fresh - bound
                    );
                }
            }
        }
        LazySelection {
            selected: best.map(|(o, _)| o),
            telemetry,
        }
    }

    /// Selects the expected-detection argmax over `candidates` (no entropy
    /// pre-filter — a certain object can still expose faulty workers),
    /// reusing cache entries only at an unchanged version. Detection scores
    /// *grow* as validations accumulate, so stale entries are never trusted
    /// as bounds — they are re-evaluated like misses; the cache still
    /// short-circuits repeated guidance requests against an unchanged state.
    pub fn select_detections(
        &self,
        ctx: &ScoringContext<'_>,
        candidates: &[ObjectId],
        cache: Option<&RefCell<GuidanceCache>>,
    ) -> LazySelection {
        let Some(cell) = cache else {
            let scores = self.detection_scores(ctx, candidates);
            return LazySelection {
                selected: argmax_object(&scores),
                telemetry: GuidanceTelemetry {
                    evaluated: scores.len(),
                    ..GuidanceTelemetry::default()
                },
            };
        };
        let mut cache = cell.borrow_mut();
        let mut telemetry = GuidanceTelemetry::default();
        let mut best: Option<(ObjectId, f64)> = None;
        let mut must_evaluate: Vec<ObjectId> = Vec::new();
        for &o in candidates {
            match cache.lookup(ScoreFamily::Detections, o) {
                CachedScore::Exact(v) => {
                    telemetry.served_from_cache += 1;
                    consider(&mut best, o, v);
                }
                _ => must_evaluate.push(o),
            }
        }
        // The non-reusable candidates fan out in parallel like the eager
        // path — there is no early termination to serialize here.
        for (o, score) in crate::parallel::score_candidates(&must_evaluate, ctx.parallel, |o| {
            Self::expected_detections_of(ctx.detector, ctx.answers, ctx.expert, ctx.current, o)
        }) {
            cache.store(ScoreFamily::Detections, o, score);
            telemetry.evaluated += 1;
            consider(&mut best, o, score);
        }
        cache.record_step(telemetry);
        LazySelection {
            selected: best.map(|(o, _)| o),
            telemetry,
        }
    }

    /// Leave-one-out confirmation sweep (§5.5): for every validated object,
    /// re-aggregates without that validation (warm-started) and reports the
    /// objects whose reconstructed label disagrees with the expert's. Runs
    /// the per-object re-aggregations through the same parallel fan-out as
    /// candidate scoring.
    ///
    /// This sweep always uses the exact path ([`Aggregator::conclude_warm`]):
    /// removing a validation un-clamps an object, which the pin-seeded delta
    /// frontier does not model.
    pub fn leave_one_out_disagreements(&self, ctx: &ScoringContext<'_>) -> Vec<ObjectId> {
        let validated: Vec<ObjectId> = ctx.expert.iter().map(|(o, _)| o).collect();
        let disagree = score_candidates(&validated, ctx.parallel, |o| {
            let leave_one_out = ctx.expert.without(o);
            let p = ctx
                .aggregator
                .conclude_warm(ctx.answers, &leave_one_out, ctx.current);
            let reconstructed = p.instantiate();
            let validated_label = ctx.expert.get(o).expect("object is validated");
            if reconstructed.label(o) != validated_label {
                1.0
            } else {
                0.0
            }
        });
        disagree
            .into_iter()
            .filter(|&(_, d)| d > 0.5)
            .map(|(o, _)| o)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::tests_support::context_fixture;

    #[test]
    fn lazy_selection_matches_eager_argmax_and_serves_repeats_from_cache() {
        let fixture = context_fixture(14, 6, 2, 47);
        let candidates: Vec<ObjectId> = (0..14).map(ObjectId).collect();
        let engine = ScoringEngine::with_shortlist(6);
        let ctx = ScoringContext {
            answers: &fixture.answers,
            expert: &fixture.expert,
            current: &fixture.current,
            aggregator: &fixture.aggregator,
            detector: &fixture.detector,
            parallel: false,
            entropy_cache: None,
        };

        let eager = engine.select_information_gain(&ctx, &candidates, None);
        assert!(eager.selected.is_some());
        assert_eq!(eager.telemetry.evaluated, 6);

        // A cold cache evaluates everything and picks the same object.
        let cache = RefCell::new(GuidanceCache::new());
        let first = engine.select_information_gain(&ctx, &candidates, Some(&cache));
        assert_eq!(first.selected, eager.selected);
        assert_eq!(first.telemetry.evaluated, 6);
        assert_eq!(first.telemetry.served_from_cache, 0);
        assert!(first.telemetry.em_iterations > 0);

        // Unchanged state: the repeat is served entirely from exact entries.
        let second = engine.select_information_gain(&ctx, &candidates, Some(&cache));
        assert_eq!(second.selected, eager.selected);
        assert_eq!(second.telemetry.evaluated, 0);
        assert_eq!(second.telemetry.served_from_cache, 6);

        // After a version bump with no actual state change, the lazy loop
        // works from stale bounds — and must still land on the same argmax.
        cache.borrow_mut().bump_version();
        let third = engine.select_information_gain(&ctx, &candidates, Some(&cache));
        assert_eq!(third.selected, eager.selected);

        // Detection family: same argmax as eager, exact repeats served.
        let det_eager = engine.select_detections(&ctx, &candidates, None);
        let det_first = engine.select_detections(&ctx, &candidates, Some(&cache));
        assert_eq!(det_first.selected, det_eager.selected);
        let det_second = engine.select_detections(&ctx, &candidates, Some(&cache));
        assert_eq!(det_second.selected, det_eager.selected);
        assert_eq!(det_second.telemetry.evaluated, 0);

        // Telemetry accumulated across the recorded steps.
        let totals = cache.borrow().totals();
        assert!(totals.evaluated > 0 && totals.served_from_cache > 0);

        // The parallel fan-out over must-evaluate candidates picks the same
        // object from a cold cache.
        let parallel_ctx = ScoringContext {
            parallel: true,
            ..ctx
        };
        let parallel_cache = RefCell::new(GuidanceCache::new());
        let parallel =
            engine.select_information_gain(&parallel_ctx, &candidates, Some(&parallel_cache));
        assert_eq!(parallel.selected, eager.selected);
        assert_eq!(parallel.telemetry.evaluated, 6);
        assert_eq!(
            engine
                .select_detections(&parallel_ctx, &candidates, Some(&parallel_cache))
                .selected,
            det_eager.selected
        );
    }

    #[test]
    fn shortlist_keeps_the_most_uncertain_candidates() {
        let mut fixture = context_fixture(10, 5, 2, 11);
        fixture
            .current
            .assignment_mut()
            .set_distribution(ObjectId(6), &[0.5, 0.5]);
        fixture
            .current
            .assignment_mut()
            .set_certain(ObjectId(2), LabelId(0));
        let candidates: Vec<ObjectId> = (0..10).map(ObjectId).collect();
        let engine = ScoringEngine::with_shortlist(3);
        let short = engine.shortlist(&fixture.current, &candidates);
        assert_eq!(short.len(), 3);
        assert!(
            short.contains(&ObjectId(6)),
            "most uncertain object was filtered out"
        );
        assert!(
            !short.contains(&ObjectId(2)),
            "certain object survived the pre-filter"
        );
        // Without pressure the shortlist is the identity.
        assert_eq!(
            ScoringEngine::exhaustive().shortlist(&fixture.current, &candidates),
            candidates
        );
    }

    #[test]
    fn shortlist_order_is_total_even_with_nan_entropies() {
        let mut fixture = context_fixture(6, 4, 2, 13);
        // A poisoned (NaN) distribution must sort below every real entropy
        // instead of short-circuiting the comparator.
        fixture
            .current
            .assignment_mut()
            .set_distribution(ObjectId(1), &[f64::NAN, f64::NAN]);
        fixture
            .current
            .assignment_mut()
            .set_distribution(ObjectId(4), &[0.5, 0.5]);
        let candidates: Vec<ObjectId> = (0..6).map(ObjectId).collect();
        let short = ScoringEngine::with_shortlist(3).shortlist(&fixture.current, &candidates);
        assert_eq!(short.len(), 3);
        assert!(short.contains(&ObjectId(4)), "max-entropy object dropped");
        assert!(
            !short.contains(&ObjectId(1)),
            "NaN entropy outranked real entropies: {short:?}"
        );
    }

    #[test]
    fn serial_and_parallel_rankings_are_identical() {
        let fixture = context_fixture(12, 6, 2, 13);
        let candidates: Vec<ObjectId> = (0..12).map(ObjectId).collect();
        let engine = ScoringEngine::exhaustive();
        let serial_ctx = ScoringContext {
            answers: &fixture.answers,
            expert: &fixture.expert,
            current: &fixture.current,
            aggregator: &fixture.aggregator,
            detector: &fixture.detector,
            parallel: false,
            entropy_cache: None,
        };
        let parallel_ctx = ScoringContext {
            parallel: true,
            ..serial_ctx
        };
        let serial = engine.information_gain_scores(&serial_ctx, &candidates);
        let parallel = engine.information_gain_scores(&parallel_ctx, &candidates);
        assert_eq!(serial.len(), parallel.len());
        for ((o1, s1), (o2, s2)) in serial.iter().zip(&parallel) {
            assert_eq!(o1, o2);
            assert!((s1 - s2).abs() < 1e-12, "IG for {o1} differs: {s1} vs {s2}");
        }
        let serial_det = engine.detection_scores(&serial_ctx, &candidates);
        let parallel_det = engine.detection_scores(&parallel_ctx, &candidates);
        assert_eq!(serial_det, parallel_det);
    }

    #[test]
    fn hypothesis_evaluation_pins_the_hypothetical_label() {
        let fixture = context_fixture(8, 4, 2, 17);
        for mode in [ScoringMode::Exact, ScoringMode::Delta] {
            let p = ScoringEngine::evaluate_hypothesis(
                &fixture.aggregator,
                &fixture.answers,
                &fixture.expert,
                &fixture.current,
                ObjectId(3),
                LabelId(1),
                mode,
            );
            assert_eq!(p.assignment().prob(ObjectId(3), LabelId(1)), 1.0);
        }
        // The original state is untouched.
        assert!(fixture.expert.get(ObjectId(3)).is_none());
    }

    #[test]
    fn warm_started_hypotheses_match_cold_restarts_within_em_tolerance() {
        use crowdval_aggregation::{Aggregator, BatchEm, EmConfig, IncrementalEm};
        use crowdval_sim::{PopulationMix, SyntheticConfig};
        // A reliable crowd keeps the EM single-basin, so the warm start and
        // the cold restart must converge to the same fixed point (within the
        // EM convergence tolerance) — in both scoring modes.
        let synth = SyntheticConfig {
            num_objects: 16,
            num_workers: 8,
            reliability: 0.85,
            mix: PopulationMix::all_reliable(),
            ..SyntheticConfig::paper_default(43)
        }
        .generate();
        let answers = synth.dataset.answers().clone();
        let truth = synth.dataset.ground_truth().clone();
        let mut expert = ExpertValidation::empty(16);
        for o in 0..4 {
            expert.set(ObjectId(o), truth.label(ObjectId(o)));
        }
        let warm_aggregator = IncrementalEm::default();
        let cold_aggregator = BatchEm::default();
        let current = warm_aggregator.conclude(&answers, &expert, None);

        let tolerance = 50.0 * EmConfig::paper_default().tolerance;
        for &object in &expert.unvalidated_objects()[..6] {
            for l in 0..answers.num_labels() {
                let label = LabelId(l);
                if current.assignment().prob(object, label) <= NEGLIGIBLE_WEIGHT {
                    continue;
                }
                let mut hypothetical = expert.clone();
                hypothetical.set(object, label);
                let cold = cold_aggregator.conclude(&answers, &hypothetical, None);
                for mode in [ScoringMode::Exact, ScoringMode::Delta] {
                    let warm = ScoringEngine::evaluate_hypothesis(
                        &warm_aggregator,
                        &answers,
                        &expert,
                        &current,
                        object,
                        label,
                        mode,
                    );
                    let diff = warm.assignment().max_abs_diff(cold.assignment());
                    assert!(
                        diff <= tolerance,
                        "hypothesis ({object}, {label}, {mode:?}): warm/cold assignments differ by {diff}"
                    );
                    assert!(
                        (warm.uncertainty() - cold.uncertainty()).abs() <= tolerance * 16.0,
                        "hypothesis ({object}, {label}, {mode:?}): warm H {} vs cold H {}",
                        warm.uncertainty(),
                        cold.uncertainty()
                    );
                }
            }
        }
    }

    #[test]
    fn leave_one_out_flags_contradicted_validations() {
        use crowdval_sim::{PopulationMix, SyntheticConfig};
        let synth = SyntheticConfig {
            num_objects: 20,
            num_workers: 12,
            reliability: 0.9,
            mix: PopulationMix::all_reliable(),
            ..SyntheticConfig::paper_default(19)
        }
        .generate();
        let answers = synth.dataset.answers().clone();
        let truth = synth.dataset.ground_truth().clone();
        let mut expert = ExpertValidation::empty(20);
        for o in 0..5 {
            expert.set(ObjectId(o), truth.label(ObjectId(o)));
        }
        // Flip one validation against a reliable crowd.
        let flipped = ObjectId(2);
        expert.set(flipped, LabelId(1 - truth.label(flipped).index()));
        let aggregator = crowdval_aggregation::IncrementalEm::default();
        let current =
            crowdval_aggregation::Aggregator::conclude(&aggregator, &answers, &expert, None);
        let detector = SpammerDetector::default();
        let ctx = ScoringContext {
            answers: &answers,
            expert: &expert,
            current: &current,
            aggregator: &aggregator,
            detector: &detector,
            parallel: false,
            entropy_cache: None,
        };
        let flagged = ScoringEngine::new().leave_one_out_disagreements(&ctx);
        assert!(
            flagged.contains(&flipped),
            "flipped validation not flagged: {flagged:?}"
        );
        // Parallel sweep agrees with the serial one.
        let parallel_ctx = ScoringContext {
            parallel: true,
            ..ctx
        };
        assert_eq!(
            ScoringEngine::new().leave_one_out_disagreements(&parallel_ctx),
            flagged
        );
    }
}
