//! Validation goals (paper §3.2 / §5.1).
//!
//! The validation process halts when it reaches its goal Δ or exhausts the
//! expert-effort budget `b`, whichever comes first. Goals are phrased either
//! over the measured uncertainty of the probabilistic answer set or — for
//! evaluation runs where a ground truth is available — over the precision of
//! the deterministic assignment.

use serde::{Deserialize, Serialize};

/// The stopping condition Δ of the validation process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum ValidationGoal {
    /// Never stop early; run until the budget (or the object set) is
    /// exhausted.
    #[default]
    ExhaustBudget,
    /// Stop once the total uncertainty `H(P)` drops to or below the
    /// threshold.
    MaxUncertainty(f64),
    /// Stop once the precision of the deterministic assignment reaches the
    /// threshold. Only meaningful when the process is given a reference
    /// ground truth (evaluation mode); otherwise it behaves like
    /// [`ValidationGoal::ExhaustBudget`].
    TargetPrecision(f64),
}

impl ValidationGoal {
    /// Checks whether the goal is satisfied by the current state.
    pub fn is_satisfied(&self, uncertainty: f64, precision: Option<f64>) -> bool {
        match *self {
            ValidationGoal::ExhaustBudget => false,
            ValidationGoal::MaxUncertainty(threshold) => uncertainty <= threshold,
            ValidationGoal::TargetPrecision(target) => precision.is_some_and(|p| p >= target),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaust_budget_never_stops_early() {
        assert!(!ValidationGoal::ExhaustBudget.is_satisfied(0.0, Some(1.0)));
    }

    #[test]
    fn uncertainty_goal_compares_against_threshold() {
        let goal = ValidationGoal::MaxUncertainty(1.5);
        assert!(goal.is_satisfied(1.5, None));
        assert!(goal.is_satisfied(0.3, None));
        assert!(!goal.is_satisfied(2.0, None));
    }

    #[test]
    fn precision_goal_requires_a_measured_precision() {
        let goal = ValidationGoal::TargetPrecision(0.95);
        assert!(goal.is_satisfied(5.0, Some(0.97)));
        assert!(goal.is_satisfied(5.0, Some(0.95)));
        assert!(!goal.is_satisfied(0.0, Some(0.90)));
        assert!(!goal.is_satisfied(0.0, None));
    }

    #[test]
    fn default_goal_is_exhaust_budget() {
        assert_eq!(ValidationGoal::default(), ValidationGoal::ExhaustBudget);
    }
}
