//! The guided answer-validation process (paper §3.2 and Algorithm 1) — the
//! **batch facade** over the incremental session core.
//!
//! [`ValidationProcess`] is the historical entry point: build it from a fully
//! collected [`AnswerSet`] and validate. Since the streaming refactor it is a
//! thin wrapper around [`crate::session::ValidationSession`] — "ingest
//! everything at build time, then run" — so the two pipelines share one
//! engine and cannot drift apart. Workloads where votes keep arriving during
//! validation should use the session directly
//! ([`crate::session::ValidationSession::ingest`]).
//!
//! The process can be driven in two ways:
//!
//! * **interactively** — call [`ValidationProcess::select_next`] to get the
//!   object the expert should look at, obtain the expert's label out of band,
//!   and feed it back with [`ValidationProcess::integrate`]; repeat as long
//!   as budget remains. This is the pay-as-you-go mode: a deterministic
//!   assignment can be instantiated at any time.
//! * **batch** — call [`ValidationProcess::run`] with an [`ExpertSource`]
//!   (e.g. a simulated expert) and a stopping condition; the engine loops
//!   until the goal, the budget or the object set is exhausted.

use crate::confirmation::ConfirmationCheck;
use crate::goal::ValidationGoal;
use crate::metrics::ValidationTrace;
use crate::scoring::ScoringContext;
use crate::session::ValidationSession;
use crate::strategy::SelectionStrategy;
use crowdval_aggregation::Aggregator;
use crowdval_model::{
    AnswerSet, DeterministicAssignment, ExpertValidation, GroundTruth, LabelId, ObjectId,
    ProbabilisticAnswerSet, WorkerId,
};
use crowdval_spammer::{SpammerDetector, TrustConfig};
use crowdval_triage::TriageConfig;
use serde::{Deserialize, Serialize};

/// Where expert labels come from in batch mode.
pub trait ExpertSource {
    /// Provides the expert's label for `object`.
    fn provide_label(&mut self, object: ObjectId) -> LabelId;

    /// Re-examines an object whose earlier validation was flagged as
    /// suspicious by the confirmation check. Defaults to answering the
    /// question again.
    fn reconsider(&mut self, object: ObjectId) -> LabelId {
        self.provide_label(object)
    }
}

impl<F: FnMut(ObjectId) -> LabelId> ExpertSource for F {
    fn provide_label(&mut self, object: ObjectId) -> LabelId {
        self(object)
    }
}

/// Run-time options of the validation process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessConfig {
    /// Maximum number of expert interactions (the effort budget `b`);
    /// `None` allows validating every object.
    pub budget: Option<usize>,
    /// Stopping condition Δ checked after every validation.
    pub goal: ValidationGoal,
    /// Leave-one-out confirmation check for erroneous validations; `None`
    /// disables it.
    pub confirmation_check: Option<ConfirmationCheck>,
    /// Whether detected faulty workers are excluded from aggregation
    /// (§5.3 "Handling faulty workers").
    pub handle_faulty_workers: bool,
    /// Whether per-candidate scoring may use multiple threads.
    pub parallel: bool,
    /// Whether guidance keeps a cross-step score cache with dirty-region
    /// invalidation and lazy bound-based selection
    /// ([`crate::guidance_cache`]). On by default; selection order is
    /// bit-identical either way (property-tested) — `false` forces the
    /// eager re-score-everything path, which the selection benchmark uses
    /// as its baseline.
    pub guidance_cache: bool,
    /// Online adversarial-worker defense: thresholds of the streaming trust
    /// ledger ([`crowdval_spammer::WorkerTrustLedger`]). The ledger always
    /// *tracks* trust; with `trust.enabled` (and `handle_faulty_workers`)
    /// it also auto-tombstones and reinstates workers on every ingest and
    /// validation. Disabled by default — sessions then behave exactly like
    /// the pre-defense (§5.3-only) pipeline.
    pub trust: TrustConfig,
    /// Agreement-prediction triage ([`crowdval_triage`]): thresholds of the
    /// convergence predictor that auto-finalizes objects predicted
    /// unanimous and pre-filters the guidance pool down to the contentious
    /// ones. Only the `Copy` knobs live here; the predictor weights, audit
    /// trail and counters are session state and snapshot separately.
    /// Disabled by default — sessions then behave exactly like the
    /// pre-triage pipeline.
    pub triage: TriageConfig,
}

impl Default for ProcessConfig {
    fn default() -> Self {
        Self {
            budget: None,
            goal: ValidationGoal::ExhaustBudget,
            confirmation_check: None,
            handle_faulty_workers: true,
            parallel: false,
            guidance_cache: true,
            trust: TrustConfig::default(),
            triage: TriageConfig::default(),
        }
    }
}

/// Builder for [`ValidationProcess`].
pub struct ValidationProcessBuilder {
    inner: crate::session::ValidationSessionBuilder,
}

impl ValidationProcessBuilder {
    /// Starts a builder with the paper's default components: i-EM
    /// aggregation and the hybrid guidance strategy.
    pub fn new(answers: AnswerSet) -> Self {
        Self {
            inner: crate::session::ValidationSessionBuilder::new(answers),
        }
    }

    /// Replaces the aggregator (the *conclude* step).
    pub fn aggregator(mut self, aggregator: Box<dyn Aggregator>) -> Self {
        self.inner = self.inner.aggregator(aggregator);
        self
    }

    /// Replaces the guidance strategy (the *select* step).
    pub fn strategy(mut self, strategy: Box<dyn SelectionStrategy>) -> Self {
        self.inner = self.inner.strategy(strategy);
        self
    }

    /// Replaces the faulty-worker detector.
    pub fn detector(mut self, detector: SpammerDetector) -> Self {
        self.inner = self.inner.detector(detector);
        self
    }

    /// Sets the run-time options.
    pub fn config(mut self, config: ProcessConfig) -> Self {
        self.inner = self.inner.config(config);
        self
    }

    /// Attaches a reference ground truth; enables precision tracking and
    /// precision-based goals (evaluation mode).
    pub fn ground_truth(mut self, truth: GroundTruth) -> Self {
        self.inner = self.inner.ground_truth(truth);
        self
    }

    /// Builds the process and runs the initial aggregation, validating
    /// label-count consistency between the answer set, the ground truth and
    /// the configured goal up front (see
    /// [`crate::session::ValidationSessionBuilder::try_build`]).
    pub fn try_build(self) -> Result<ValidationProcess, crowdval_model::ModelError> {
        Ok(ValidationProcess {
            session: self.inner.try_build()?,
        })
    }

    /// Builds the process and runs the initial aggregation.
    ///
    /// # Panics
    /// Panics when the parts are inconsistent (see
    /// [`ValidationProcessBuilder::try_build`] for the non-panicking
    /// variant).
    pub fn build(self) -> ValidationProcess {
        ValidationProcess {
            session: self.inner.build(),
        }
    }
}

/// The validation-process engine (Algorithm 1): the batch facade over
/// [`ValidationSession`].
pub struct ValidationProcess {
    session: ValidationSession,
}

impl ValidationProcess {
    /// Creates the process and performs the initial aggregation (`P_0`,
    /// `d_0`).
    pub fn new(
        answers: AnswerSet,
        aggregator: Box<dyn Aggregator>,
        strategy: Box<dyn SelectionStrategy>,
        detector: SpammerDetector,
        config: ProcessConfig,
        ground_truth: Option<GroundTruth>,
    ) -> Self {
        Self {
            session: ValidationSession::new(
                answers,
                aggregator,
                strategy,
                detector,
                config,
                ground_truth,
            ),
        }
    }

    /// Convenience entry point for the builder.
    pub fn builder(answers: AnswerSet) -> ValidationProcessBuilder {
        ValidationProcessBuilder::new(answers)
    }

    /// The underlying incremental session. Escape hatch for callers that
    /// want to start in batch mode and switch to streaming ingestion.
    pub fn session(&self) -> &ValidationSession {
        &self.session
    }

    /// Mutable access to the underlying session (e.g. to
    /// [`ValidationSession::ingest`] more votes mid-run).
    pub fn session_mut(&mut self) -> &mut ValidationSession {
        &mut self.session
    }

    /// Consumes the facade, yielding the session.
    pub fn into_session(self) -> ValidationSession {
        self.session
    }

    /// The original (unfiltered) answer set.
    pub fn answers(&self) -> &AnswerSet {
        self.session.answers()
    }

    /// The expert validations collected so far.
    pub fn expert(&self) -> &ExpertValidation {
        self.session.expert()
    }

    /// The current probabilistic answer set.
    pub fn current(&self) -> &ProbabilisticAnswerSet {
        self.session.current()
    }

    /// The validation trace accumulated so far.
    pub fn trace(&self) -> &ValidationTrace {
        self.session.trace()
    }

    /// Workers currently excluded as suspected faulty.
    pub fn excluded_workers(&self) -> Vec<WorkerId> {
        self.session.excluded_workers()
    }

    /// Number of validations performed so far.
    pub fn iterations(&self) -> usize {
        self.session.iterations()
    }

    /// The deterministic assignment assumed correct at this point: the
    /// most-probable labels, with validated objects pinned to the expert's
    /// label (the *filter* step plus Algorithm 1 line 17).
    pub fn deterministic_assignment(&self) -> DeterministicAssignment {
        self.session.deterministic_assignment()
    }

    /// Precision of the current deterministic assignment against the
    /// reference ground truth, when one was provided.
    pub fn precision(&self) -> Option<f64> {
        self.session.precision()
    }

    /// Current uncertainty `H(P)`.
    pub fn uncertainty(&self) -> f64 {
        self.session.uncertainty()
    }

    /// Whether the configured goal or budget has been reached.
    pub fn is_finished(&self) -> bool {
        self.session.is_finished()
    }

    /// Step (1) of the validation process: selects the object for which
    /// expert feedback should be sought next. Returns `None` when every
    /// object has been validated.
    pub fn select_next(&mut self) -> Option<ObjectId> {
        self.session.select_next()
    }

    /// Steps (2)–(4) of the validation process: integrates the expert's
    /// label for `object`, updates worker exclusions, re-aggregates and
    /// records a trace step. Returns the objects flagged by the confirmation
    /// check (empty when the check is disabled or not due). Out-of-range
    /// objects and labels are rejected with a typed error instead of
    /// panicking.
    pub fn integrate(
        &mut self,
        object: ObjectId,
        label: LabelId,
    ) -> Result<Vec<ObjectId>, crowdval_model::ModelError> {
        self.session.integrate(object, label)
    }

    /// The scoring view of the current validation state: what the guidance
    /// strategies and the confirmation check hand to the
    /// [`crate::scoring::ScoringEngine`].
    pub fn scoring_context(&self) -> ScoringContext<'_> {
        self.session.scoring_context()
    }

    /// Replaces a previously given validation after the expert reconsidered a
    /// flagged object. Counts as one additional unit of expert effort.
    pub fn revalidate(
        &mut self,
        object: ObjectId,
        label: LabelId,
    ) -> Result<(), crowdval_model::ModelError> {
        self.session.revalidate(object, label)
    }

    /// Checkpoints the underlying session
    /// (see [`ValidationSession::snapshot`]).
    pub fn snapshot(&self) -> Result<crate::snapshot::SessionSnapshot, crowdval_model::ModelError> {
        self.session.snapshot()
    }

    /// Batch mode: runs the validation loop against an expert source until
    /// the goal is reached, the budget is exhausted, or every object has been
    /// validated. Returns the trace. Fails when the expert source hands back
    /// an out-of-range label.
    pub fn run(
        &mut self,
        expert_source: &mut dyn ExpertSource,
    ) -> Result<&ValidationTrace, crowdval_model::ModelError> {
        self.session.run(expert_source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{EntropyBaseline, HybridStrategy, RandomSelection, UncertaintyDriven};
    use crowdval_sim::{SimulatedExpert, SyntheticConfig};

    fn synthetic(seed: u64) -> crowdval_sim::SyntheticDataset {
        SyntheticConfig {
            num_objects: 30,
            ..SyntheticConfig::paper_default(seed)
        }
        .generate()
    }

    fn oracle(synth: &crowdval_sim::SyntheticDataset) -> SimulatedExpert {
        SimulatedExpert::perfect(
            synth.dataset.ground_truth().clone(),
            synth.dataset.answers().num_labels(),
        )
    }

    struct OracleSource(SimulatedExpert);
    impl ExpertSource for OracleSource {
        fn provide_label(&mut self, object: ObjectId) -> LabelId {
            self.0.validate(object)
        }
    }

    #[test]
    fn interactive_loop_improves_precision_and_reduces_uncertainty() {
        let synth = synthetic(301);
        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(HybridStrategy::new(7)))
            .ground_truth(synth.dataset.ground_truth().clone())
            .build();
        let initial_uncertainty = process.uncertainty();
        let initial_precision = process.precision().unwrap();
        let mut expert = oracle(&synth);
        for _ in 0..10 {
            let o = process.select_next().expect("candidates remain");
            let l = expert.validate(o);
            process.integrate(o, l).unwrap();
        }
        assert_eq!(process.iterations(), 10);
        assert_eq!(process.trace().len(), 10);
        // Uncertainty stays bounded (it can rise temporarily when excluding a
        // suspected worker removes evidence, but never beyond the maximum
        // entropy of the unvalidated objects).
        let max_entropy = (30 - process.expert().count()) as f64 * 2.0_f64.ln();
        assert!(process.uncertainty() <= max_entropy + 1e-9);
        assert!(process.uncertainty().is_finite() && process.uncertainty() >= 0.0);
        let _ = initial_uncertainty;
        assert!(process.precision().unwrap() >= initial_precision - 0.05);
        // Validated objects are pinned in the deterministic assignment.
        for (o, l) in process.expert().iter() {
            assert_eq!(process.deterministic_assignment().label(o), l);
        }
    }

    #[test]
    fn batch_run_reaches_perfect_precision_with_full_budget() {
        let synth = synthetic(302);
        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(EntropyBaseline))
            .config(ProcessConfig {
                goal: ValidationGoal::TargetPrecision(1.0),
                ..ProcessConfig::default()
            })
            .ground_truth(synth.dataset.ground_truth().clone())
            .build();
        let mut source = OracleSource(oracle(&synth));
        let trace = process.run(&mut source).unwrap();
        assert_eq!(trace.final_precision(), Some(1.0));
        // Guided validation should not need to validate every single object.
        assert!(trace.len() <= 30);
    }

    #[test]
    fn budget_is_respected() {
        let synth = synthetic(303);
        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(RandomSelection::new(5)))
            .config(ProcessConfig {
                budget: Some(7),
                ..ProcessConfig::default()
            })
            .ground_truth(synth.dataset.ground_truth().clone())
            .build();
        let mut source = OracleSource(oracle(&synth));
        let steps = process.run(&mut source).unwrap().len();
        assert_eq!(steps, 7);
        assert!(process.is_finished());
    }

    #[test]
    fn uncertainty_goal_stops_the_run() {
        let synth = synthetic(304);
        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(UncertaintyDriven::new()))
            .config(ProcessConfig {
                goal: ValidationGoal::MaxUncertainty(1.0),
                ..ProcessConfig::default()
            })
            .build();
        let mut source = OracleSource(oracle(&synth));
        let steps = process.run(&mut source).unwrap().len();
        assert!(process.uncertainty() <= 1.0 || steps == 30);
    }

    #[test]
    fn confirmation_check_recovers_from_an_erroneous_validation() {
        let synth = SyntheticConfig {
            num_objects: 30,
            num_workers: 15,
            reliability: 0.85,
            mix: crowdval_sim::PopulationMix::all_reliable(),
            ..SyntheticConfig::paper_default(305)
        }
        .generate();
        let truth = synth.dataset.ground_truth().clone();

        // An expert that errs on its third validation, then answers correctly
        // when asked to reconsider.
        struct FlakyExpert {
            truth: GroundTruth,
            calls: usize,
        }
        impl ExpertSource for FlakyExpert {
            fn provide_label(&mut self, object: ObjectId) -> LabelId {
                self.calls += 1;
                let correct = self.truth.label(object);
                if self.calls == 3 {
                    LabelId(1 - correct.index())
                } else {
                    correct
                }
            }
            fn reconsider(&mut self, object: ObjectId) -> LabelId {
                self.truth.label(object)
            }
        }

        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(EntropyBaseline))
            .config(ProcessConfig {
                budget: Some(12),
                confirmation_check: Some(ConfirmationCheck::every(1)),
                ..ProcessConfig::default()
            })
            .ground_truth(truth.clone())
            .build();
        let mut source = FlakyExpert {
            truth: truth.clone(),
            calls: 0,
        };
        process.run(&mut source).unwrap();
        // Every validated object ends up with the correct label despite the
        // injected mistake.
        for (o, l) in process.expert().iter() {
            assert_eq!(l, truth.label(o), "object {o} kept an erroneous validation");
        }
    }

    #[test]
    fn select_next_returns_none_once_everything_is_validated() {
        let synth = SyntheticConfig {
            num_objects: 5,
            ..SyntheticConfig::paper_default(306)
        }
        .generate();
        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(EntropyBaseline))
            .ground_truth(synth.dataset.ground_truth().clone())
            .build();
        let mut expert = oracle(&synth);
        while let Some(o) = process.select_next() {
            let l = expert.validate(o);
            process.integrate(o, l).unwrap();
        }
        assert_eq!(process.expert().count(), 5);
        assert!(process.is_finished());
        assert_eq!(process.precision(), Some(1.0));
        assert!(process.select_next().is_none());
    }

    #[test]
    fn worker_exclusions_are_reported() {
        let synth = SyntheticConfig {
            num_objects: 40,
            mix: crowdval_sim::PopulationMix::with_spammer_ratio(0.35),
            ..SyntheticConfig::paper_default(307)
        }
        .generate();
        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(crate::strategy::WorkerDriven))
            .config(ProcessConfig {
                budget: Some(20),
                ..ProcessConfig::default()
            })
            .ground_truth(synth.dataset.ground_truth().clone())
            .build();
        let mut source = OracleSource(oracle(&synth));
        process.run(&mut source).unwrap();
        // With 35 % spammers and the worker-driven strategy, at least one
        // worker should have been excluded at some point.
        let max_excluded = process
            .trace()
            .steps
            .iter()
            .map(|s| s.excluded_workers)
            .max()
            .unwrap_or(0);
        assert!(max_excluded > 0, "no worker was ever excluded");
        assert_eq!(
            process.excluded_workers().len(),
            process.trace().steps.last().unwrap().excluded_workers
        );
    }

    #[test]
    fn facade_exposes_the_session_for_streaming_continuation() {
        let synth = synthetic(308);
        let truth = synth.dataset.ground_truth().clone();
        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(EntropyBaseline))
            .ground_truth(truth.clone())
            .build();
        let o = process.select_next().unwrap();
        process.integrate(o, truth.label(o)).unwrap();
        // Switch to streaming: a brand-new object arrives with a few votes.
        let new_object = ObjectId(process.answers().num_objects());
        let votes: Vec<crowdval_model::Vote> = (0..3)
            .map(|w| crowdval_model::Vote::new(new_object, crowdval_model::WorkerId(w), LabelId(0)))
            .collect();
        let update = process.session_mut().ingest(&votes).unwrap();
        assert_eq!(update.new_objects, 1);
        assert_eq!(process.answers().num_objects(), 31);
        assert!(process.session().votes_ingested() == 3);
        let session = process.into_session();
        assert_eq!(session.iterations(), 1);
    }
}
