//! The guided answer-validation process (paper §3.2 and Algorithm 1).
//!
//! [`ValidationProcess`] is the engine that ties everything together. It can
//! be driven in two ways:
//!
//! * **interactively** — call [`ValidationProcess::select_next`] to get the
//!   object the expert should look at, obtain the expert's label out of band,
//!   and feed it back with [`ValidationProcess::integrate`]; repeat as long
//!   as budget remains. This is the pay-as-you-go mode: a deterministic
//!   assignment can be instantiated at any time.
//! * **batch** — call [`ValidationProcess::run`] with an [`ExpertSource`]
//!   (e.g. a simulated expert) and a stopping condition; the engine loops
//!   until the goal, the budget or the object set is exhausted.

use crate::confirmation::ConfirmationCheck;
use crate::goal::ValidationGoal;
use crate::metrics::{ValidationStep, ValidationTrace};
use crate::scoring::ScoringContext;
use crate::strategy::{SelectionStrategy, StrategyContext, StrategyKind, ValidationObservation};
use crowdval_aggregation::Aggregator;
use crowdval_model::{
    AnswerSet, DeterministicAssignment, ExpertValidation, GroundTruth, LabelId, ObjectId,
    ProbabilisticAnswerSet, WorkerId,
};
use crowdval_spammer::{FaultyWorkerHandler, SpammerDetector};
use serde::{Deserialize, Serialize};

/// Where expert labels come from in batch mode.
pub trait ExpertSource {
    /// Provides the expert's label for `object`.
    fn provide_label(&mut self, object: ObjectId) -> LabelId;

    /// Re-examines an object whose earlier validation was flagged as
    /// suspicious by the confirmation check. Defaults to answering the
    /// question again.
    fn reconsider(&mut self, object: ObjectId) -> LabelId {
        self.provide_label(object)
    }
}

impl<F: FnMut(ObjectId) -> LabelId> ExpertSource for F {
    fn provide_label(&mut self, object: ObjectId) -> LabelId {
        self(object)
    }
}

/// Run-time options of the validation process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessConfig {
    /// Maximum number of expert interactions (the effort budget `b`);
    /// `None` allows validating every object.
    pub budget: Option<usize>,
    /// Stopping condition Δ checked after every validation.
    pub goal: ValidationGoal,
    /// Leave-one-out confirmation check for erroneous validations; `None`
    /// disables it.
    pub confirmation_check: Option<ConfirmationCheck>,
    /// Whether detected faulty workers are excluded from aggregation
    /// (§5.3 "Handling faulty workers").
    pub handle_faulty_workers: bool,
    /// Whether per-candidate scoring may use multiple threads.
    pub parallel: bool,
}

impl Default for ProcessConfig {
    fn default() -> Self {
        Self {
            budget: None,
            goal: ValidationGoal::ExhaustBudget,
            confirmation_check: None,
            handle_faulty_workers: true,
            parallel: false,
        }
    }
}

/// Builder for [`ValidationProcess`].
pub struct ValidationProcessBuilder {
    answers: AnswerSet,
    aggregator: Box<dyn Aggregator>,
    strategy: Box<dyn SelectionStrategy>,
    detector: SpammerDetector,
    config: ProcessConfig,
    ground_truth: Option<GroundTruth>,
}

impl ValidationProcessBuilder {
    /// Starts a builder with the paper's default components: i-EM
    /// aggregation and the hybrid guidance strategy.
    pub fn new(answers: AnswerSet) -> Self {
        Self {
            answers,
            aggregator: Box::new(crowdval_aggregation::IncrementalEm::default()),
            strategy: Box::new(crate::strategy::HybridStrategy::new(0)),
            detector: SpammerDetector::default(),
            config: ProcessConfig::default(),
            ground_truth: None,
        }
    }

    /// Replaces the aggregator (the *conclude* step).
    pub fn aggregator(mut self, aggregator: Box<dyn Aggregator>) -> Self {
        self.aggregator = aggregator;
        self
    }

    /// Replaces the guidance strategy (the *select* step).
    pub fn strategy(mut self, strategy: Box<dyn SelectionStrategy>) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the faulty-worker detector.
    pub fn detector(mut self, detector: SpammerDetector) -> Self {
        self.detector = detector;
        self
    }

    /// Sets the run-time options.
    pub fn config(mut self, config: ProcessConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a reference ground truth; enables precision tracking and
    /// precision-based goals (evaluation mode).
    pub fn ground_truth(mut self, truth: GroundTruth) -> Self {
        self.ground_truth = Some(truth);
        self
    }

    /// Builds the process and runs the initial aggregation.
    pub fn build(self) -> ValidationProcess {
        ValidationProcess::new(
            self.answers,
            self.aggregator,
            self.strategy,
            self.detector,
            self.config,
            self.ground_truth,
        )
    }
}

/// The validation-process engine (Algorithm 1).
pub struct ValidationProcess {
    answers: AnswerSet,
    active_answers: AnswerSet,
    aggregator: Box<dyn Aggregator>,
    strategy: Option<Box<dyn SelectionStrategy>>,
    detector: SpammerDetector,
    handler: FaultyWorkerHandler,
    config: ProcessConfig,
    ground_truth: Option<GroundTruth>,
    expert: ExpertValidation,
    current: ProbabilisticAnswerSet,
    trace: ValidationTrace,
    iteration: usize,
}

impl ValidationProcess {
    /// Creates the process and performs the initial aggregation (`P_0`,
    /// `d_0`).
    pub fn new(
        answers: AnswerSet,
        aggregator: Box<dyn Aggregator>,
        strategy: Box<dyn SelectionStrategy>,
        detector: SpammerDetector,
        config: ProcessConfig,
        ground_truth: Option<GroundTruth>,
    ) -> Self {
        let expert = ExpertValidation::empty(answers.num_objects());
        let current = aggregator.conclude(&answers, &expert, None);
        let initial_precision = ground_truth
            .as_ref()
            .map(|g| g.precision(&current.instantiate()));
        let trace = ValidationTrace::new(
            answers.num_objects(),
            current.uncertainty(),
            initial_precision,
        );
        Self {
            active_answers: answers.clone(),
            answers,
            aggregator,
            strategy: Some(strategy),
            detector,
            handler: FaultyWorkerHandler::new(),
            config,
            ground_truth,
            expert,
            current,
            trace,
            iteration: 0,
        }
    }

    /// Convenience entry point for the builder.
    pub fn builder(answers: AnswerSet) -> ValidationProcessBuilder {
        ValidationProcessBuilder::new(answers)
    }

    /// The original (unfiltered) answer set.
    pub fn answers(&self) -> &AnswerSet {
        &self.answers
    }

    /// The expert validations collected so far.
    pub fn expert(&self) -> &ExpertValidation {
        &self.expert
    }

    /// The current probabilistic answer set.
    pub fn current(&self) -> &ProbabilisticAnswerSet {
        &self.current
    }

    /// The validation trace accumulated so far.
    pub fn trace(&self) -> &ValidationTrace {
        &self.trace
    }

    /// Workers currently excluded as suspected faulty.
    pub fn excluded_workers(&self) -> Vec<WorkerId> {
        self.handler.excluded()
    }

    /// Number of validations performed so far.
    pub fn iterations(&self) -> usize {
        self.iteration
    }

    /// The deterministic assignment assumed correct at this point: the
    /// most-probable labels, with validated objects pinned to the expert's
    /// label (the *filter* step plus Algorithm 1 line 17).
    pub fn deterministic_assignment(&self) -> DeterministicAssignment {
        let mut d = self.current.instantiate();
        for (o, l) in self.expert.iter() {
            d.set_label(o, l);
        }
        d
    }

    /// Precision of the current deterministic assignment against the
    /// reference ground truth, when one was provided.
    pub fn precision(&self) -> Option<f64> {
        self.ground_truth
            .as_ref()
            .map(|g| g.precision(&self.deterministic_assignment()))
    }

    /// Current uncertainty `H(P)`.
    pub fn uncertainty(&self) -> f64 {
        self.current.uncertainty()
    }

    /// Whether the configured goal or budget has been reached.
    pub fn is_finished(&self) -> bool {
        let budget_exhausted = self.config.budget.is_some_and(|b| self.trace.len() >= b);
        let nothing_left = self.expert.count() >= self.answers.num_objects();
        let goal_reached = self
            .config
            .goal
            .is_satisfied(self.uncertainty(), self.precision());
        budget_exhausted || nothing_left || goal_reached
    }

    /// Step (1) of the validation process: selects the object for which
    /// expert feedback should be sought next. Returns `None` when every
    /// object has been validated.
    pub fn select_next(&mut self) -> Option<ObjectId> {
        let candidates = self.expert.unvalidated_objects();
        if candidates.is_empty() {
            return None;
        }
        let mut strategy = self
            .strategy
            .take()
            .expect("strategy always present outside select");
        let picked = {
            let ctx = StrategyContext {
                answers: &self.active_answers,
                expert: &self.expert,
                current: &self.current,
                aggregator: self.aggregator.as_ref(),
                detector: &self.detector,
                candidates: &candidates,
                parallel: self.config.parallel,
            };
            strategy.select(&ctx)
        };
        self.strategy = Some(strategy);
        picked
    }

    /// Steps (2)–(4) of the validation process: integrates the expert's
    /// label for `object`, updates worker exclusions, re-aggregates and
    /// records a trace step. Returns the objects flagged by the confirmation
    /// check (empty when the check is disabled or not due).
    pub fn integrate(&mut self, object: ObjectId, label: LabelId) -> Vec<ObjectId> {
        self.iteration += 1;
        // Error rate of the previous estimate on the validated object
        // (Algorithm 1 line 10).
        let error_rate = 1.0 - self.current.assignment().prob(object, label);

        // Update the validation function first so detection sees the newest
        // ground truth (Algorithm 1 lines 11–15).
        self.expert.set(object, label);
        let detection = self
            .detector
            .detect(&self.answers, &self.expert, self.current.priors());
        let faulty_ratio = if self.answers.num_workers() == 0 {
            0.0
        } else {
            detection.num_faulty() as f64 / self.answers.num_workers() as f64
        };
        let strategy = self.strategy.as_mut().expect("strategy present");
        if self.config.handle_faulty_workers && strategy.handle_spammers_now() {
            self.handler.apply(&detection);
            self.active_answers = self.handler.filtered_answers(&self.answers);
        }
        strategy.observe(&ValidationObservation {
            error_rate,
            faulty_ratio,
            coverage: self.expert.coverage(),
        });
        let strategy_kind = strategy.last_kind();

        // Conclude: update the probabilistic answer set (line 16).
        self.current =
            self.aggregator
                .conclude(&self.active_answers, &self.expert, Some(&self.current));

        self.record_step(object, label, strategy_kind, error_rate);

        // Confirmation check for erroneous validations (§5.5), fanned out
        // through the scoring engine like every other hypothesis sweep.
        match self.config.confirmation_check {
            Some(check) if check.is_due(self.iteration) => {
                check.flag_suspicious_in(&self.scoring_context())
            }
            _ => Vec::new(),
        }
    }

    /// The scoring view of the current validation state: what the guidance
    /// strategies and the confirmation check hand to the
    /// [`crate::scoring::ScoringEngine`].
    pub fn scoring_context(&self) -> ScoringContext<'_> {
        ScoringContext {
            answers: &self.active_answers,
            expert: &self.expert,
            current: &self.current,
            aggregator: self.aggregator.as_ref(),
            detector: &self.detector,
            parallel: self.config.parallel,
        }
    }

    /// Replaces a previously given validation after the expert reconsidered a
    /// flagged object. Counts as one additional unit of expert effort.
    pub fn revalidate(&mut self, object: ObjectId, label: LabelId) {
        self.iteration += 1;
        let error_rate = 1.0 - self.current.assignment().prob(object, label);
        self.expert.set(object, label);
        self.current =
            self.aggregator
                .conclude(&self.active_answers, &self.expert, Some(&self.current));
        let kind = self
            .strategy
            .as_ref()
            .map_or(StrategyKind::Hybrid, |s| s.last_kind());
        self.record_step(object, label, kind, error_rate);
    }

    fn record_step(
        &mut self,
        object: ObjectId,
        label: LabelId,
        strategy: StrategyKind,
        error_rate: f64,
    ) {
        let precision = self.precision();
        self.trace.steps.push(ValidationStep {
            iteration: self.iteration,
            object,
            label,
            strategy,
            uncertainty: self.current.uncertainty(),
            precision,
            error_rate,
            excluded_workers: self.handler.num_excluded(),
            em_iterations: self.current.em_iterations(),
        });
    }

    /// Batch mode: runs the validation loop against an expert source until
    /// the goal is reached, the budget is exhausted, or every object has been
    /// validated. Returns the trace.
    pub fn run(&mut self, expert_source: &mut dyn ExpertSource) -> &ValidationTrace {
        while !self.is_finished() {
            let Some(object) = self.select_next() else {
                break;
            };
            let label = expert_source.provide_label(object);
            let flagged = self.integrate(object, label);
            for suspicious in flagged {
                if self.is_finished() {
                    break;
                }
                let corrected = expert_source.reconsider(suspicious);
                if self.expert.get(suspicious) != Some(corrected) {
                    self.revalidate(suspicious, corrected);
                }
            }
        }
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{EntropyBaseline, HybridStrategy, RandomSelection, UncertaintyDriven};
    use crowdval_sim::{SimulatedExpert, SyntheticConfig};

    fn synthetic(seed: u64) -> crowdval_sim::SyntheticDataset {
        SyntheticConfig {
            num_objects: 30,
            ..SyntheticConfig::paper_default(seed)
        }
        .generate()
    }

    fn oracle(synth: &crowdval_sim::SyntheticDataset) -> SimulatedExpert {
        SimulatedExpert::perfect(
            synth.dataset.ground_truth().clone(),
            synth.dataset.answers().num_labels(),
        )
    }

    struct OracleSource(SimulatedExpert);
    impl ExpertSource for OracleSource {
        fn provide_label(&mut self, object: ObjectId) -> LabelId {
            self.0.validate(object)
        }
    }

    #[test]
    fn interactive_loop_improves_precision_and_reduces_uncertainty() {
        let synth = synthetic(301);
        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(HybridStrategy::new(7)))
            .ground_truth(synth.dataset.ground_truth().clone())
            .build();
        let initial_uncertainty = process.uncertainty();
        let initial_precision = process.precision().unwrap();
        let mut expert = oracle(&synth);
        for _ in 0..10 {
            let o = process.select_next().expect("candidates remain");
            let l = expert.validate(o);
            process.integrate(o, l);
        }
        assert_eq!(process.iterations(), 10);
        assert_eq!(process.trace().len(), 10);
        // Uncertainty stays bounded (it can rise temporarily when excluding a
        // suspected worker removes evidence, but never beyond the maximum
        // entropy of the unvalidated objects).
        let max_entropy = (30 - process.expert().count()) as f64 * 2.0_f64.ln();
        assert!(process.uncertainty() <= max_entropy + 1e-9);
        assert!(process.uncertainty().is_finite() && process.uncertainty() >= 0.0);
        let _ = initial_uncertainty;
        assert!(process.precision().unwrap() >= initial_precision - 0.05);
        // Validated objects are pinned in the deterministic assignment.
        for (o, l) in process.expert().iter() {
            assert_eq!(process.deterministic_assignment().label(o), l);
        }
    }

    #[test]
    fn batch_run_reaches_perfect_precision_with_full_budget() {
        let synth = synthetic(302);
        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(EntropyBaseline))
            .config(ProcessConfig {
                goal: ValidationGoal::TargetPrecision(1.0),
                ..ProcessConfig::default()
            })
            .ground_truth(synth.dataset.ground_truth().clone())
            .build();
        let mut source = OracleSource(oracle(&synth));
        let trace = process.run(&mut source);
        assert_eq!(trace.final_precision(), Some(1.0));
        // Guided validation should not need to validate every single object.
        assert!(trace.len() <= 30);
    }

    #[test]
    fn budget_is_respected() {
        let synth = synthetic(303);
        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(RandomSelection::new(5)))
            .config(ProcessConfig {
                budget: Some(7),
                ..ProcessConfig::default()
            })
            .ground_truth(synth.dataset.ground_truth().clone())
            .build();
        let mut source = OracleSource(oracle(&synth));
        let steps = process.run(&mut source).len();
        assert_eq!(steps, 7);
        assert!(process.is_finished());
    }

    #[test]
    fn uncertainty_goal_stops_the_run() {
        let synth = synthetic(304);
        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(UncertaintyDriven::new()))
            .config(ProcessConfig {
                goal: ValidationGoal::MaxUncertainty(1.0),
                ..ProcessConfig::default()
            })
            .build();
        let mut source = OracleSource(oracle(&synth));
        let steps = process.run(&mut source).len();
        assert!(process.uncertainty() <= 1.0 || steps == 30);
    }

    #[test]
    fn confirmation_check_recovers_from_an_erroneous_validation() {
        let synth = SyntheticConfig {
            num_objects: 30,
            num_workers: 15,
            reliability: 0.85,
            mix: crowdval_sim::PopulationMix::all_reliable(),
            ..SyntheticConfig::paper_default(305)
        }
        .generate();
        let truth = synth.dataset.ground_truth().clone();

        // An expert that errs on its third validation, then answers correctly
        // when asked to reconsider.
        struct FlakyExpert {
            truth: GroundTruth,
            calls: usize,
        }
        impl ExpertSource for FlakyExpert {
            fn provide_label(&mut self, object: ObjectId) -> LabelId {
                self.calls += 1;
                let correct = self.truth.label(object);
                if self.calls == 3 {
                    LabelId(1 - correct.index())
                } else {
                    correct
                }
            }
            fn reconsider(&mut self, object: ObjectId) -> LabelId {
                self.truth.label(object)
            }
        }

        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(EntropyBaseline))
            .config(ProcessConfig {
                budget: Some(12),
                confirmation_check: Some(ConfirmationCheck::every(1)),
                ..ProcessConfig::default()
            })
            .ground_truth(truth.clone())
            .build();
        let mut source = FlakyExpert {
            truth: truth.clone(),
            calls: 0,
        };
        process.run(&mut source);
        // Every validated object ends up with the correct label despite the
        // injected mistake.
        for (o, l) in process.expert().iter() {
            assert_eq!(l, truth.label(o), "object {o} kept an erroneous validation");
        }
    }

    #[test]
    fn select_next_returns_none_once_everything_is_validated() {
        let synth = SyntheticConfig {
            num_objects: 5,
            ..SyntheticConfig::paper_default(306)
        }
        .generate();
        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(EntropyBaseline))
            .ground_truth(synth.dataset.ground_truth().clone())
            .build();
        let mut expert = oracle(&synth);
        while let Some(o) = process.select_next() {
            let l = expert.validate(o);
            process.integrate(o, l);
        }
        assert_eq!(process.expert().count(), 5);
        assert!(process.is_finished());
        assert_eq!(process.precision(), Some(1.0));
        assert!(process.select_next().is_none());
    }

    #[test]
    fn worker_exclusions_are_reported() {
        let synth = SyntheticConfig {
            num_objects: 40,
            mix: crowdval_sim::PopulationMix::with_spammer_ratio(0.35),
            ..SyntheticConfig::paper_default(307)
        }
        .generate();
        let mut process = ValidationProcess::builder(synth.dataset.answers().clone())
            .strategy(Box::new(crate::strategy::WorkerDriven))
            .config(ProcessConfig {
                budget: Some(20),
                ..ProcessConfig::default()
            })
            .ground_truth(synth.dataset.ground_truth().clone())
            .build();
        let mut source = OracleSource(oracle(&synth));
        process.run(&mut source);
        // With 35 % spammers and the worker-driven strategy, at least one
        // worker should have been excluded at some point.
        let max_excluded = process
            .trace()
            .steps
            .iter()
            .map(|s| s.excluded_workers)
            .max()
            .unwrap_or(0);
        assert!(max_excluded > 0, "no worker was ever excluded");
        assert_eq!(
            process.excluded_workers().len(),
            process.trace().steps.last().unwrap().excluded_workers
        );
    }
}
