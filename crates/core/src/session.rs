//! Incremental validation sessions: the event-driven core of the validation
//! process (paper §3.2 / Algorithm 1, extended with §5.4's view maintenance
//! applied to **vote arrival**).
//!
//! The paper's setting is a live crowdsourcing platform: answers keep
//! arriving *while* the expert validates. A [`ValidationSession`] models
//! exactly that. It owns the growing answer set, the expert validation
//! function, the current probabilistic answer set and the guidance state, and
//! is driven by two kinds of events:
//!
//! * **vote arrival** — [`ValidationSession::ingest`] absorbs a batch of
//!   [`Vote`]s, growing the answer matrix in place (new votes, new objects
//!   and new workers mid-session are all fine), then re-aggregates through
//!   the arrival-centric delta path
//!   ([`crowdval_aggregation::Aggregator::conclude_arrival`]): the dirty set
//!   is seeded from the touched objects instead of a pinned hypothesis, the
//!   frontier expands through the answering workers, and the same
//!   Aitken-polished full-map phase certifies the batch path's convergence
//!   criterion. Only the entropy-shortlist entries of assignment rows that
//!   actually moved are invalidated, so the next selection step re-ranks
//!   incrementally.
//! * **expert validation** — [`ValidationSession::select_next`] /
//!   [`ValidationSession::integrate`], unchanged from the batch pipeline
//!   (Algorithm 1 steps 1–4), except that spammer exclusion now flips
//!   tombstone bits on the active answer view instead of copying the matrix.
//!
//! The historical batch API survives as a thin facade:
//! [`crate::process::ValidationProcess`] is "ingest everything at build time,
//! then validate" over this session core.

use crate::guidance_cache::{GuidanceCache, GuidanceTelemetry};
use crate::metrics::{ValidationStep, ValidationTrace};
use crate::process::{ExpertSource, ProcessConfig};
use crate::scoring::ScoringContext;
use crate::shortlist::EntropyShortlist;
use crate::snapshot::{SessionDelta, SessionEvent, SessionSnapshot};
use crate::strategy::{SelectionStrategy, StrategyContext, StrategyKind, ValidationObservation};
use crowdval_aggregation::{Aggregator, ChurnTracker};
use crowdval_model::{
    AnswerSet, DeterministicAssignment, ExpertValidation, GroundTruth, LabelId, ModelError,
    ObjectId, ProbabilisticAnswerSet, Vote, WorkerId,
};
use crowdval_spammer::{
    BatchVote, DefenseTelemetry, FaultyWorkerHandler, SpammerDetector, TrustDecision, TrustReport,
    WorkerTrustLedger,
};
use crowdval_triage::{
    AuditRecord, ConvergencePredictor, TriageCounters, TriageDecision, TriageFeatures, TriageState,
};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// What one [`ValidationSession::ingest`] call did to the session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionUpdate {
    /// Votes absorbed by this batch.
    pub votes_ingested: usize,
    /// Objects that entered the session with this batch.
    pub new_objects: usize,
    /// Workers that entered the session with this batch.
    pub new_workers: usize,
    /// Distinct objects that received votes in this batch (the delta seed
    /// set), in id order.
    pub touched_objects: Vec<ObjectId>,
    /// EM iterations the re-aggregation spent.
    pub em_iterations: usize,
    /// Entropy-shortlist entries invalidated by *this* re-aggregation (rows
    /// of the assignment that actually moved in this update, growth rows
    /// included — not counting entries still dirty from earlier updates).
    pub invalidated_entries: usize,
    /// Guidance-cache entries this arrival dropped (dirty-region
    /// invalidation; 0 when the cache is disabled or was already empty).
    pub guidance_invalidated: usize,
    /// Uncertainty `H(P)` after the update.
    pub uncertainty: f64,
    /// Workers the online defense tombstoned during this ingest, in id
    /// order (empty when the defense is disabled).
    pub workers_excluded: Vec<WorkerId>,
    /// Workers the online defense reinstated during this ingest, in id
    /// order (empty when the defense is disabled).
    pub workers_reinstated: Vec<WorkerId>,
}

/// Builder for [`ValidationSession`].
pub struct ValidationSessionBuilder {
    answers: AnswerSet,
    aggregator: Box<dyn Aggregator>,
    strategy: Box<dyn SelectionStrategy>,
    detector: SpammerDetector,
    config: ProcessConfig,
    ground_truth: Option<GroundTruth>,
}

impl ValidationSessionBuilder {
    /// Starts a builder from an initial answer set (possibly empty) with the
    /// paper's default components: i-EM aggregation and the hybrid guidance
    /// strategy.
    pub fn new(answers: AnswerSet) -> Self {
        Self {
            answers,
            aggregator: Box::new(crowdval_aggregation::IncrementalEm::default()),
            strategy: Box::new(crate::strategy::HybridStrategy::new(0)),
            detector: SpammerDetector::default(),
            config: ProcessConfig::default(),
            ground_truth: None,
        }
    }

    /// Starts a builder for a session with no initial votes at all — the
    /// pure streaming case, where everything arrives through
    /// [`ValidationSession::ingest`].
    pub fn empty(num_labels: usize) -> Self {
        Self::new(AnswerSet::new(0, 0, num_labels))
    }

    /// Replaces the aggregator (the *conclude* step).
    pub fn aggregator(mut self, aggregator: Box<dyn Aggregator>) -> Self {
        self.aggregator = aggregator;
        self
    }

    /// Replaces the guidance strategy (the *select* step).
    pub fn strategy(mut self, strategy: Box<dyn SelectionStrategy>) -> Self {
        self.strategy = strategy;
        self
    }

    /// Replaces the faulty-worker detector.
    pub fn detector(mut self, detector: SpammerDetector) -> Self {
        self.detector = detector;
        self
    }

    /// Sets the run-time options.
    pub fn config(mut self, config: ProcessConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a reference ground truth; enables precision tracking and
    /// precision-based goals (evaluation mode). The truth may cover more
    /// objects than the session has seen — streaming scenarios know the full
    /// eventual object set up front — and precision is measured over the
    /// overlap.
    pub fn ground_truth(mut self, truth: GroundTruth) -> Self {
        self.ground_truth = Some(truth);
        self
    }

    /// Builds the session and runs the initial aggregation, after checking
    /// that the parts agree with each other — label-count consistency
    /// between the answer set, the ground truth and the configured goal is
    /// verified *here*, not deep inside the first aggregation (or worse,
    /// the first validation that touches the inconsistent object).
    ///
    /// Checks performed:
    ///
    /// * every ground-truth label is inside the answer set's label space
    ///   (otherwise a simulated expert would eventually feed an
    ///   out-of-range label into [`ValidationSession::integrate`]);
    /// * [`crate::goal::ValidationGoal::TargetPrecision`] is a finite value
    ///   in `[0, 1]` and a ground truth is attached (without one the goal
    ///   can never be evaluated and the run would only stop on budget);
    /// * [`crate::goal::ValidationGoal::MaxUncertainty`] is finite and
    ///   non-negative.
    pub fn try_build(self) -> Result<ValidationSession, ModelError> {
        let num_labels = self.answers.num_labels();
        if let Some(truth) = &self.ground_truth {
            if let Some(max_label) = truth.max_label_index() {
                if max_label >= num_labels {
                    return Err(ModelError::LabelOutOfRange {
                        label: max_label,
                        num_labels,
                    });
                }
            }
        }
        match self.config.goal {
            crate::goal::ValidationGoal::TargetPrecision(target) => {
                if !(0.0..=1.0).contains(&target) {
                    return Err(ModelError::InvalidConfig {
                        message: format!("target precision {target} outside [0, 1]"),
                    });
                }
                if self.ground_truth.is_none() {
                    return Err(ModelError::InvalidConfig {
                        message: "TargetPrecision goal requires a ground truth \
                                  (evaluation mode); without one the goal can never \
                                  be satisfied"
                            .to_string(),
                    });
                }
            }
            crate::goal::ValidationGoal::MaxUncertainty(threshold) => {
                if !threshold.is_finite() || threshold < 0.0 {
                    return Err(ModelError::InvalidConfig {
                        message: format!(
                            "uncertainty threshold {threshold} must be finite and ≥ 0"
                        ),
                    });
                }
            }
            crate::goal::ValidationGoal::ExhaustBudget => {}
        }
        Ok(ValidationSession::new(
            self.answers,
            self.aggregator,
            self.strategy,
            self.detector,
            self.config,
            self.ground_truth,
        ))
    }

    /// Builds the session and runs the initial aggregation.
    ///
    /// # Panics
    /// Panics when the parts are inconsistent (see
    /// [`ValidationSessionBuilder::try_build`] for the checks and the
    /// non-panicking variant).
    pub fn build(self) -> ValidationSession {
        self.try_build()
            .unwrap_or_else(|e| panic!("invalid validation session: {e}"))
    }
}

/// The incremental validation-session engine (Algorithm 1 + streaming
/// ingestion).
///
/// # Single-owner invariant
///
/// A session is **single-owner state**: every entry point takes `&mut self`
/// (or `&self` with interior mutability that is not `Sync`), there is no
/// internal locking, and no correctness property survives two threads
/// driving one session. The session *is* `Send` — ownership may move
/// wholesale between threads, which is exactly how the sharded service
/// runtime parallelizes: each shard worker exclusively owns its sessions
/// and tasks never migrate, so the hot path needs no synchronization at
/// all. Cross-thread *sharing* is deliberately unsupported (the type is not
/// `Sync`); wrap a session in external synchronization only if you accept
/// serializing every call anyway. The invariant is pinned by compile-time
/// assertions in this module's tests.
pub struct ValidationSession {
    /// The full vote stream seen so far (never masked — the detector needs
    /// every worker's answers against the expert validations).
    answers: AnswerSet,
    /// The aggregation view: same votes, with suspected faulty workers
    /// hidden behind tombstone bits (§5.3).
    active_answers: AnswerSet,
    aggregator: Box<dyn Aggregator>,
    strategy: Option<Box<dyn SelectionStrategy>>,
    detector: SpammerDetector,
    handler: FaultyWorkerHandler,
    /// Online-defense trust ledger: always *tracking* (cheap per-vote
    /// counters, batch kappa, decayed approval rates), enforcing tombstones
    /// only when `config.trust.enabled`.
    trust: WorkerTrustLedger,
    config: ProcessConfig,
    ground_truth: Option<GroundTruth>,
    expert: ExpertValidation,
    current: ProbabilisticAnswerSet,
    shortlist: EntropyShortlist,
    /// Cross-step guidance score cache (§5.4 view maintenance across
    /// selection steps). Interior mutability because the selection
    /// strategies update it through a shared [`StrategyContext`]; dropped on
    /// snapshot and rebuilt lazily on restore (exactness-on-miss makes that
    /// safe — the first post-restore selection is a full re-score with the
    /// same exact argmax).
    guidance: RefCell<GuidanceCache>,
    /// Telemetry of the most recent `select_next`, consumed into the trace
    /// step of the validation that follows it.
    last_guidance: GuidanceTelemetry,
    trace: ValidationTrace,
    iteration: usize,
    votes_ingested: usize,
    /// Corpus size (visible answers) at the last *cold* aggregation — the
    /// doubling trigger for re-anchoring (see [`ValidationSession::ingest`]).
    answers_at_last_cold: usize,
    /// Per-object EWMA of posterior movement across re-aggregation rounds —
    /// the churn triage feature. Only fed while `config.triage.enabled`
    /// (the diff against the previous posterior is not free).
    churn: ChurnTracker,
    /// Agreement-prediction triage state: the convergence predictor, the
    /// auto-finalize audit trail and the monotone counters. Serialized with
    /// the snapshot so triage decisions replay bit-identically.
    triage: TriageState,
    /// Write-ahead log for incremental checkpoints: `None` until
    /// [`ValidationSession::enable_delta_log`]. Interior mutability because
    /// taking a full snapshot (`&self`) re-anchors the log. Never serialized
    /// — a delta is only meaningful next to the full snapshot that anchors
    /// it, and a restored session starts with the log off.
    wal: RefCell<Option<SessionWal>>,
}

/// The in-memory write-ahead log backing [`ValidationSession::delta_snapshot`].
#[derive(Debug)]
struct SessionWal {
    anchor_iteration: usize,
    anchor_votes_ingested: usize,
    events: Vec<SessionEvent>,
}

impl ValidationSession {
    /// Creates the session and performs the initial aggregation (`P_0`,
    /// `d_0`) over whatever votes are already present.
    pub fn new(
        answers: AnswerSet,
        aggregator: Box<dyn Aggregator>,
        strategy: Box<dyn SelectionStrategy>,
        detector: SpammerDetector,
        config: ProcessConfig,
        ground_truth: Option<GroundTruth>,
    ) -> Self {
        let expert = ExpertValidation::empty(answers.num_objects());
        let answers_at_last_cold = answers.matrix().num_answers();
        let current = aggregator.conclude(&answers, &expert, None);
        let initial_precision = ground_truth
            .as_ref()
            .map(|g| Self::overlap_precision(g, &current.instantiate()));
        let trace = ValidationTrace::new(
            answers.num_objects(),
            current.uncertainty(),
            initial_precision,
        );
        let mut shortlist = EntropyShortlist::new();
        shortlist.ensure_len(answers.num_objects());
        let mut trust = WorkerTrustLedger::new();
        trust.ensure_workers(answers.num_workers());
        Self {
            active_answers: answers.clone(),
            answers,
            aggregator,
            strategy: Some(strategy),
            detector,
            handler: FaultyWorkerHandler::new(),
            trust,
            config,
            ground_truth,
            expert,
            current,
            shortlist,
            guidance: RefCell::new(GuidanceCache::new()),
            last_guidance: GuidanceTelemetry::default(),
            trace,
            iteration: 0,
            votes_ingested: 0,
            answers_at_last_cold,
            churn: ChurnTracker::new(),
            triage: TriageState::default(),
            wal: RefCell::new(None),
        }
    }

    /// Convenience entry point for the builder.
    pub fn builder(answers: AnswerSet) -> ValidationSessionBuilder {
        ValidationSessionBuilder::new(answers)
    }

    // -----------------------------------------------------------------------
    // Streaming ingestion
    // -----------------------------------------------------------------------

    /// Absorbs a batch of arriving votes: grows the answer matrix in place
    /// (new objects and workers welcome), seeds the delta path's dirty set
    /// with the touched objects, re-aggregates with the same convergence
    /// certificate as a full re-estimation, and invalidates only the
    /// entropy-shortlist entries whose assignment rows moved.
    ///
    /// Returns what changed. Fails only on a label outside the session's
    /// fixed label space; the session state is untouched by vote batches
    /// that fail validation up front.
    pub fn ingest(&mut self, votes: &[Vote]) -> Result<SessionUpdate, ModelError> {
        // Validate the whole batch before mutating anything.
        for vote in votes {
            if vote.label.index() >= self.answers.num_labels() {
                return Err(ModelError::LabelOutOfRange {
                    label: vote.label.index(),
                    num_labels: self.answers.num_labels(),
                });
            }
        }
        if votes.is_empty() {
            return Ok(SessionUpdate {
                votes_ingested: 0,
                new_objects: 0,
                new_workers: 0,
                touched_objects: Vec::new(),
                em_iterations: 0,
                invalidated_entries: 0,
                guidance_invalidated: 0,
                uncertainty: self.current.uncertainty(),
                workers_excluded: Vec::new(),
                workers_reinstated: Vec::new(),
            });
        }
        let prev_objects = self.answers.num_objects();
        let prev_workers = self.answers.num_workers();

        // Batch-size capacity hint: one arena/mirror reservation up front
        // instead of chunk-at-a-time growth while the loop below records
        // `votes.len()` arrivals into both copies.
        self.answers.reserve_answers(votes.len());
        self.active_answers.reserve_answers(votes.len());

        let mut touched: Vec<ObjectId> = Vec::with_capacity(votes.len());
        let mut batch_votes: Vec<BatchVote> = Vec::with_capacity(votes.len());
        for &vote in votes {
            // The copy heuristic needs the pre-vote modal label, so the
            // annotation is computed before the vote is recorded (earlier
            // votes of the same batch count as "prior" — stream order).
            batch_votes.push(BatchVote {
                object: vote.object,
                worker: vote.worker,
                label: vote.label,
                prior_modal: self.prior_modal(vote.object),
            });
            self.answers
                .record_arrival(vote)
                .expect("labels were validated above");
            self.active_answers
                .record_arrival(vote)
                .expect("labels were validated above");
            touched.push(vote.object);
        }
        touched.sort();
        touched.dedup();
        self.votes_ingested += votes.len();

        // Patch the compact CSR mirrors once per batch, so the
        // re-aggregation below streams flat rows instead of chasing the
        // paged chunk chains (rows dirtied after this point simply fall
        // back to the chains until the next batch).
        self.answers.sync_compact_views();
        self.active_answers.sync_compact_views();

        let num_objects = self.answers.num_objects();
        self.expert.ensure_domain(num_objects);
        self.trace.num_objects = num_objects;

        // Online defense: absorb the batch's stream heuristics (constant
        // answers, label copying, kappa-gated dissent) and, when enforcement
        // is on, flip tombstones *before* re-aggregating so this batch's own
        // aggregation already sees the updated view.
        self.trust.ensure_workers(self.answers.num_workers());
        self.trust
            .observe_batch(self.answers.num_labels(), &batch_votes, &self.config.trust);
        let defense = if self.config.handle_faulty_workers && self.config.trust.enabled {
            let defense = self.trust.decide(&self.config.trust);
            if !defense.is_empty() {
                self.handler.sync_excluded(&self.trust.excluded());
                self.handler.apply_exclusions(&mut self.active_answers);
            }
            defense
        } else {
            TrustDecision::default()
        };

        // Arrival-centric re-aggregation over the active (masked) view, warm
        // from the pre-arrival state even across growth — unless the corpus
        // has *doubled* since the last cold initialization. Warm starts
        // inherit whatever the early, data-starved stream taught the model
        // (EM hysteresis: a basin locked in on 5 % of the votes survives
        // every later warm start), so the session re-anchors with one cold
        // majority-vote-initialized aggregation per corpus doubling. The
        // doubling schedule keeps the amortized extra cost constant — cold
        // re-anchors become exponentially rare as the stream grows — while
        // bounding hysteresis: the warm state always descends from a cold
        // init on at least half the current corpus.
        let total_answers = self.active_answers.matrix().num_answers();
        let (next, moved) = if total_answers >= 2 * self.answers_at_last_cold.max(1)
            || !defense.reinstated.is_empty()
        {
            self.answers_at_last_cold = total_answers;
            // Cold re-anchor: the trajectory restarts from a majority-vote
            // init, so nothing about the previous state bounds what moved —
            // the guidance cache must be invalidated globally. A
            // reinstatement forces this path off-schedule: the returning
            // worker's votes were invisible to every anchor of the warm
            // trajectory, so the warm state cannot be trusted to absorb them.
            (
                self.aggregator
                    .conclude(&self.active_answers, &self.expert, None),
                None,
            )
        } else if !defense.excluded.is_empty() {
            // A fresh exclusion shrinks the aggregation view beyond the
            // touched objects — the arrival delta path's dirty seed no
            // longer covers everything that can move. Re-estimate warm over
            // the full view and drop the guidance cache globally.
            (
                self.aggregator
                    .conclude(&self.active_answers, &self.expert, Some(&self.current)),
                None,
            )
        } else if self.config.guidance_cache {
            let outcome = self.aggregator.conclude_arrival_tracked(
                &self.active_answers,
                &self.expert,
                &self.current,
                &touched,
                crate::guidance_cache::GUIDANCE_DRIFT_THRESHOLD,
            );
            (outcome.state, outcome.moved)
        } else {
            // No guidance cache to maintain: skip the frontier diff.
            (
                self.aggregator.conclude_arrival(
                    &self.active_answers,
                    &self.expert,
                    &self.current,
                    &touched,
                ),
                None,
            )
        };
        let invalidated = self
            .shortlist
            .invalidate_changed(self.current.assignment(), next.assignment());
        self.track_churn(&next);
        self.current = next;
        // No uncertainty-rise guard here: arrivals legitimately raise the
        // total entropy (new objects enter at near-maximal uncertainty) and
        // information gain is differential — an additive shift of `H(P)`
        // moves every retained score equally, so the bounds stay ordered.
        // The touched objects themselves need no extra invalidation: a new
        // vote that moves its object's row beyond the drift threshold lands
        // the object in `moved`; one that does not perturbs the hypothesis
        // scores by far less than the lazy loop's stale-bound margin (the
        // vote re-weights one worker's confusion row by `O(1/answers)`).
        let guidance_invalidated = self.refresh_guidance_cache(moved.as_deref(), None);

        // Delta log: the empty-batch early return above mutates nothing, so
        // only batches that actually landed are recorded.
        self.log_event(|| SessionEvent::Ingest {
            votes: votes.to_vec(),
        });

        Ok(SessionUpdate {
            votes_ingested: votes.len(),
            new_objects: num_objects - prev_objects,
            new_workers: self.answers.num_workers() - prev_workers,
            touched_objects: touched,
            em_iterations: self.current.em_iterations(),
            invalidated_entries: invalidated,
            guidance_invalidated,
            uncertainty: self.current.uncertainty(),
            workers_excluded: defense.excluded,
            workers_reinstated: defense.reinstated,
        })
    }

    /// Modal label among the votes already recorded for `object`, plus
    /// whether the object is *contested* (the runner-up label is within one
    /// vote of the modal one). `None` when the object is new or unvoted.
    /// Ties resolve to the lowest label id, so the annotation — and with it
    /// every downstream trust decision — is deterministic in stream order.
    fn prior_modal(&self, object: ObjectId) -> Option<(LabelId, bool)> {
        if object.index() >= self.answers.num_objects() {
            return None;
        }
        let mut counts = vec![0u64; self.answers.num_labels()];
        let mut total = 0u64;
        for (_, label) in self.answers.matrix().answers_for_object(object) {
            counts[label.index()] += 1;
            total += 1;
        }
        if total == 0 {
            return None;
        }
        let modal = counts
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
            .map(|(i, _)| i)
            .expect("non-empty label histogram");
        let runner_up = counts
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != modal)
            .map(|(_, &c)| c)
            .max()
            .unwrap_or(0);
        // Contested needs genuine disagreement: at least two prior votes
        // with the modal label leading by at most one. A single prior vote
        // is always "modal", and counting it would brand every second voter
        // a potential copier.
        Some((LabelId(modal), total >= 2 && counts[modal] - runner_up <= 1))
    }

    /// Dirty-region maintenance of the cross-step guidance cache after a
    /// state change. `moved` is the converged dirty frontier of the
    /// re-aggregation — the rows that moved beyond
    /// [`crate::guidance_cache::GUIDANCE_DRIFT_THRESHOLD`] — with `None`
    /// meaning "unbounded change": the whole cache is dropped and the next
    /// selection degenerates to a full re-score pass. Callers pass `None`
    /// whenever they cannot bound what happened: an aggregator without a
    /// drift tolerance, a cold re-anchor, a flipped worker exclusion, a
    /// revalidation, or a total-uncertainty *increase* after a validation
    /// (the model got more confused — exactly when retained scores stop
    /// being trustworthy upper bounds).
    ///
    /// Below three validations everything is dropped each step as well: the
    /// hypothesis scorer's label-orientation fallback switches between the
    /// exact and delta paths around the two-anchor threshold, so scores
    /// jump discontinuously.
    ///
    /// Detection scores are invalidated on *every* change: their evidence
    /// base (the per-worker validation confusions) shifts globally with each
    /// validation or arrival, and they grow over time, so stale entries are
    /// not valid upper bounds.
    ///
    /// `extra` names objects to drop regardless of the frontier (the freshly
    /// validated object — it leaves the candidate set, so its entry is dead
    /// weight either way).
    ///
    /// Returns the number of entries dropped.
    fn refresh_guidance_cache(
        &mut self,
        moved: Option<&[ObjectId]>,
        extra: Option<&[ObjectId]>,
    ) -> usize {
        if !self.config.guidance_cache {
            return 0;
        }
        let cache = self.guidance.get_mut();
        let before = cache.retained_entries();
        cache.bump_version();
        cache.invalidate_detections();
        if moved.is_none() || self.expert.count() < 3 {
            cache.invalidate_all();
        } else {
            for &o in moved.unwrap_or(&[]) {
                cache.invalidate_object(o);
            }
            for &o in extra.unwrap_or(&[]) {
                cache.invalidate_object(o);
            }
        }
        before - cache.retained_entries()
    }

    /// Total votes absorbed through [`ValidationSession::ingest`].
    pub fn votes_ingested(&self) -> usize {
        self.votes_ingested
    }

    // -----------------------------------------------------------------------
    // Accessors
    // -----------------------------------------------------------------------

    /// The full (unfiltered) answer set ingested so far.
    pub fn answers(&self) -> &AnswerSet {
        &self.answers
    }

    /// Measured heap bytes of the session's answer storage: paged arenas,
    /// compact CSR mirrors and tombstone masks, for both the unmasked
    /// corpus and the masked active view.
    pub fn memory_bytes(&self) -> usize {
        self.answers.matrix().memory_footprint().total_bytes()
            + self
                .active_answers
                .matrix()
                .memory_footprint()
                .total_bytes()
    }

    /// The expert validations collected so far.
    pub fn expert(&self) -> &ExpertValidation {
        &self.expert
    }

    /// The current probabilistic answer set.
    pub fn current(&self) -> &ProbabilisticAnswerSet {
        &self.current
    }

    /// The validation trace accumulated so far.
    pub fn trace(&self) -> &ValidationTrace {
        &self.trace
    }

    /// Workers currently excluded as suspected faulty.
    pub fn excluded_workers(&self) -> Vec<WorkerId> {
        self.handler.excluded()
    }

    /// Number of validations performed so far.
    pub fn iterations(&self) -> usize {
        self.iteration
    }

    /// Telemetry of the most recent `select_next` (zeros when the guidance
    /// cache is disabled or no selection ran yet): candidates evaluated
    /// exactly vs served from the cross-step cache, and the hypothesis EM
    /// iterations the step spent.
    pub fn last_guidance_telemetry(&self) -> GuidanceTelemetry {
        self.last_guidance
    }

    /// Cumulative guidance telemetry across every selection step so far
    /// (zeros when the guidance cache is disabled).
    pub fn guidance_totals(&self) -> GuidanceTelemetry {
        self.guidance.borrow().totals()
    }

    /// The deterministic assignment assumed correct at this point: the
    /// most-probable labels, with validated objects pinned to the expert's
    /// label (the *filter* step plus Algorithm 1 line 17).
    pub fn deterministic_assignment(&self) -> DeterministicAssignment {
        let mut d = self.current.instantiate();
        for (o, l) in self.expert.iter() {
            d.set_label(o, l);
        }
        d
    }

    /// Precision of the current deterministic assignment against the
    /// reference ground truth, when one was provided — measured over the
    /// objects both cover (mid-stream, the truth may span objects the
    /// session has not seen yet).
    pub fn precision(&self) -> Option<f64> {
        self.ground_truth
            .as_ref()
            .map(|g| Self::overlap_precision(g, &self.deterministic_assignment()))
    }

    fn overlap_precision(truth: &GroundTruth, assignment: &DeterministicAssignment) -> f64 {
        if assignment.len() <= truth.len() {
            truth.prefix_precision(assignment)
        } else {
            let covered = truth.len();
            if covered == 0 {
                return 1.0;
            }
            let correct = (0..covered)
                .filter(|&o| assignment.label(ObjectId(o)) == truth.label(ObjectId(o)))
                .count();
            correct as f64 / covered as f64
        }
    }

    /// Current uncertainty `H(P)`.
    pub fn uncertainty(&self) -> f64 {
        self.current.uncertainty()
    }

    /// Whether the configured goal or budget has been reached.
    pub fn is_finished(&self) -> bool {
        let budget_exhausted = self.config.budget.is_some_and(|b| self.trace.len() >= b);
        let nothing_left = self.expert.count() >= self.answers.num_objects();
        let goal_reached = self
            .config
            .goal
            .is_satisfied(self.uncertainty(), self.precision());
        budget_exhausted || nothing_left || goal_reached
    }

    // -----------------------------------------------------------------------
    // Expert-validation events (Algorithm 1)
    // -----------------------------------------------------------------------

    /// Step (1) of the validation process: selects the object for which
    /// expert feedback should be sought next. Returns `None` when every
    /// object has been validated.
    pub fn select_next(&mut self) -> Option<ObjectId> {
        let mut candidates = self.expert.unvalidated_objects();
        if candidates.is_empty() {
            return None;
        }
        // Bring the entropy cache up to date once; the strategies then
        // re-rank from cached values instead of recomputing every entropy.
        self.shortlist.refresh(&self.current);
        if self.config.triage.enabled
            && self.iteration >= self.config.triage.warmup_validations as usize
        {
            candidates = self.triage_pass(candidates);
            if candidates.is_empty() {
                // Everything left was auto-finalized: no expert pick this
                // step. Logged all the same — the replay must re-run the
                // triage pass to reproduce the finalizations.
                self.log_event(|| SessionEvent::Select { picked: None });
                return None;
            }
        }
        if self.config.guidance_cache {
            self.guidance.get_mut().begin_step();
        }
        let mut strategy = self
            .strategy
            .take()
            .expect("strategy always present outside select");
        let picked = {
            let ctx = StrategyContext {
                answers: &self.active_answers,
                expert: &self.expert,
                current: &self.current,
                aggregator: self.aggregator.as_ref(),
                detector: &self.detector,
                candidates: &candidates,
                parallel: self.config.parallel,
                entropy_cache: Some(&self.shortlist),
                guidance_cache: self.config.guidance_cache.then_some(&self.guidance),
            };
            strategy.select(&ctx)
        };
        self.strategy = Some(strategy);
        if self.config.guidance_cache {
            self.last_guidance = self.guidance.get_mut().last_step();
        }
        // Delta log: a selection validates nothing but advances the
        // strategy's RNG streams, so it must replay; the recorded pick is
        // also the replay integrity check. (The empty-candidates early
        // return above consults no strategy and is not logged.)
        self.log_event(|| SessionEvent::Select { picked });
        picked
    }

    /// Runs the triage policy over the unvalidated candidates (the entropy
    /// shortlist must be fresh). Objects predicted unanimous are finalized
    /// on the spot: the posterior's modal label becomes the validation
    /// outcome — no expert query, no budget, no trace step, but a full
    /// [`AuditRecord`]; the next conclude anchors the label exactly like an
    /// expert validation. The returned pool is what the selection strategy
    /// sees: the contentious objects when any were identified (so the
    /// information-gain fan-out concentrates where the crowd is predicted
    /// to stay split), the escalated rest otherwise.
    fn triage_pass(&mut self, candidates: Vec<ObjectId>) -> Vec<ObjectId> {
        let mut contentious = Vec::new();
        let mut escalated = Vec::new();
        let mut finalized = Vec::new();
        for object in candidates {
            let features = self.triage_features_fresh(object);
            let (label, confidence) = self.posterior_modal(object);
            let verdict = self.triage.decide(
                &self.config.triage,
                &features,
                confidence,
                self.iteration as u64,
            );
            match verdict.decision {
                TriageDecision::AutoFinalize => {
                    self.expert.set(object, label);
                    self.triage.record_auto_finalize(AuditRecord {
                        object,
                        label,
                        score: verdict.score,
                        confidence,
                        iteration: self.iteration as u64,
                        features,
                    });
                    finalized.push(object);
                }
                TriageDecision::Contentious => contentious.push(object),
                TriageDecision::Escalate => escalated.push(object),
            }
        }
        if !finalized.is_empty() {
            // The validation function changed under the guidance cache —
            // retained hypothesis scores are no longer valid bounds.
            self.refresh_guidance_cache(None, Some(&finalized));
        }
        if contentious.is_empty() {
            escalated
        } else {
            contentious
        }
    }

    /// The triage feature vector of one object, assuming the entropy
    /// shortlist was refreshed against the current posterior. Every feature
    /// is a pure function of session state — deterministic given the arrival
    /// history. `votes` and `margin` are pure multiset facts, invariant
    /// under worker-arrival reordering; `trust`, `entropy` and `churn` read
    /// streaming state (ledger copy evidence, EM floats) that legitimately
    /// depends on arrival order, though the voter-trust *mean* is summed in
    /// worker-id order so mere summation order never shifts it.
    fn triage_features_fresh(&self, object: ObjectId) -> TriageFeatures {
        let num_labels = self.answers.num_labels();
        let entropy_raw = self.shortlist.try_entropy(object).unwrap_or(f64::NAN);
        let max_entropy = (num_labels.max(2) as f64).ln();
        let tally = self
            .active_answers
            .matrix()
            .tally_object(object, num_labels);
        let mut voters: Vec<WorkerId> = self
            .active_answers
            .matrix()
            .answers_for_object(object)
            .map(|(w, _)| w)
            .collect();
        voters.sort_unstable();
        voters.dedup();
        let trust = if voters.is_empty() {
            // No visible votes: neutral trust (the vote-count feature
            // already keeps such objects far from auto-finalization).
            0.5
        } else {
            let sum: f64 = voters
                .iter()
                .map(|&w| (1.0 - self.trust.suspicion(w, &self.config.trust)).clamp(0.0, 1.0))
                .sum();
            sum / voters.len() as f64
        };
        TriageFeatures {
            entropy: (entropy_raw / max_entropy).clamp(0.0, 1.0),
            votes: tally.count,
            margin: tally.margin(),
            trust,
            churn: self.churn.churn(object),
        }
    }

    /// The triage features the policy would see for `object` right now,
    /// refreshing the entropy shortlist first. `None` when the object is
    /// out of range. This is the extraction entry point the sim training
    /// harness and the feature tests use; it works whether or not triage is
    /// enabled (the churn feature just reads as unknown until the tracker
    /// is fed).
    pub fn triage_features(&mut self, object: ObjectId) -> Option<TriageFeatures> {
        if object.index() >= self.answers.num_objects() {
            return None;
        }
        self.shortlist.refresh(&self.current);
        Some(self.triage_features_fresh(object))
    }

    /// Modal label of the posterior row with its probability; ties resolve
    /// to the lowest label id, so the auto-finalize outcome is
    /// deterministic.
    fn posterior_modal(&self, object: ObjectId) -> (LabelId, f64) {
        let mut best = (LabelId(0), f64::NEG_INFINITY);
        for l in 0..self.answers.num_labels() {
            let p = self.current.assignment().prob(object, LabelId(l));
            if p > best.1 {
                best = (LabelId(l), p);
            }
        }
        best
    }

    /// The session's process configuration, as fixed at construction.
    pub fn process_config(&self) -> &ProcessConfig {
        &self.config
    }

    /// The triage state: convergence predictor, audit trail and counters.
    pub fn triage_state(&self) -> &TriageState {
        &self.triage
    }

    /// The monotone triage counters (all zero while triage is disabled).
    pub fn triage_counters(&self) -> TriageCounters {
        self.triage.counters()
    }

    /// The auto-finalize audit trail, in finalization order.
    pub fn triage_audit(&self) -> &[AuditRecord] {
        self.triage.audit()
    }

    /// Installs an externally trained convergence predictor (typically from
    /// the `crowdval-sim` training harness), replacing the calibrated
    /// default. The audit trail and counters are kept.
    pub fn set_triage_predictor(&mut self, predictor: ConvergencePredictor) {
        self.triage.set_predictor(predictor);
    }

    /// Steps (2)–(4) of the validation process: integrates the expert's
    /// label for `object`, updates worker exclusions, re-aggregates and
    /// records a trace step. Returns the objects flagged by the confirmation
    /// check (empty when the check is disabled or not due).
    ///
    /// Out-of-range objects and labels are rejected up front with a typed
    /// error — the session state is untouched by a failed call. (They used
    /// to panic deep inside the posterior lookup; a service front-end must
    /// be able to refuse a malformed validation without dying.)
    pub fn integrate(
        &mut self,
        object: ObjectId,
        label: LabelId,
    ) -> Result<Vec<ObjectId>, ModelError> {
        self.check_validation_target(object, label)?;
        self.iteration += 1;
        let uncertainty_before = self.current.uncertainty();
        let excluded_before = self.handler.num_excluded();
        // Error rate of the previous estimate on the validated object
        // (Algorithm 1 line 10).
        let error_rate = 1.0 - self.current.assignment().prob(object, label);

        // Update the validation function first so detection sees the newest
        // ground truth (Algorithm 1 lines 11–15).
        self.expert.set(object, label);
        let detection = self
            .detector
            .detect(&self.answers, &self.expert, self.current.priors());
        let faulty_ratio = if self.answers.num_workers() == 0 {
            0.0
        } else {
            detection.num_faulty() as f64 / self.answers.num_workers() as f64
        };
        // Online defense: the validated object's answers feed each voter's
        // decayed approval rate, and the fresh detection verdicts fold into
        // the trust ledger before any tombstone decision. Tracking is
        // unconditional — it is cheap, aggregation-neutral, and keeps trust
        // reports meaningful even when enforcement is off.
        for (worker, answered) in self.answers.matrix().answers_for_object(object) {
            self.trust.record_validation(worker, answered == label);
        }
        self.trust.absorb_detection(&detection);
        let strategy = self.strategy.as_mut().expect("strategy present");
        let mut defense = TrustDecision::default();
        if self.config.handle_faulty_workers && self.config.trust.enabled {
            // Trust-enforcement mode: the ledger is the exclusion authority —
            // EM verdicts arrive as one evidence stream among several rather
            // than flipping tombstones directly.
            defense = self.trust.decide(&self.config.trust);
            if !defense.is_empty() {
                self.handler.sync_excluded(&self.trust.excluded());
                self.handler.apply_exclusions(&mut self.active_answers);
            }
        } else if self.config.handle_faulty_workers && strategy.handle_spammers_now() {
            self.handler.apply(&detection);
            // Tombstone flips on the shared active view — no matrix copy.
            self.active_answers
                .set_excluded_workers(&self.handler.excluded());
        }
        strategy.observe(&ValidationObservation {
            error_rate,
            faulty_ratio,
            coverage: self.expert.coverage(),
        });
        let strategy_kind = strategy.last_kind();

        // Conclude: update the probabilistic answer set (line 16). A
        // reinstated worker re-enters the view with votes the warm
        // trajectory's anchors never saw, so re-anchor from a cold
        // majority-vote init exactly like the streaming doubling trigger.
        let moved = if defense.reinstated.is_empty() {
            self.reaggregate()
        } else {
            self.reanchor_cold();
            None
        };
        // A flipped exclusion changes the aggregation *view*, and a rising
        // total uncertainty means the validation made the model more
        // confused — in both cases nothing about the previous state bounds
        // what happened to retained scores, so the region degrades to
        // global. (`defense.is_empty()` is checked separately: a same-size
        // swap of one exclusion for one reinstatement leaves the *count*
        // unchanged while still changing the view.)
        let moved = if self.handler.num_excluded() != excluded_before
            || !defense.is_empty()
            || self.current.uncertainty() > uncertainty_before
        {
            None
        } else {
            moved
        };
        self.refresh_guidance_cache(moved.as_deref(), Some(&[object]));

        self.record_step(object, label, strategy_kind, error_rate);
        self.log_event(|| SessionEvent::Integrate { object, label });

        // Confirmation check for erroneous validations (§5.5), fanned out
        // through the scoring engine like every other hypothesis sweep.
        // (Read-only and deterministic, so logging above it is safe.)
        Ok(match self.config.confirmation_check {
            Some(check) if check.is_due(self.iteration) => {
                check.flag_suspicious_in(&self.scoring_context())
            }
            _ => Vec::new(),
        })
    }

    /// Range-checks a `(object, label)` validation against the session's
    /// current id spaces.
    fn check_validation_target(&self, object: ObjectId, label: LabelId) -> Result<(), ModelError> {
        if object.index() >= self.answers.num_objects() {
            return Err(ModelError::ObjectOutOfRange {
                object: object.index(),
                num_objects: self.answers.num_objects(),
            });
        }
        if label.index() >= self.answers.num_labels() {
            return Err(ModelError::LabelOutOfRange {
                label: label.index(),
                num_labels: self.answers.num_labels(),
            });
        }
        Ok(())
    }

    /// Warm full re-aggregation over the active view, diffing assignments
    /// into the entropy cache. Returns the converged dirty frontier — the
    /// rows that moved beyond the guidance drift threshold (clamped up to
    /// the aggregator's own convergence tolerance) — or `None` when the
    /// aggregator cannot bound its drift.
    fn reaggregate(&mut self) -> Option<Vec<ObjectId>> {
        let next =
            self.aggregator
                .conclude(&self.active_answers, &self.expert, Some(&self.current));
        // The frontier diff only feeds the guidance cache — skip it (and
        // its allocation) entirely when the cache is disabled.
        let moved = if self.config.guidance_cache {
            self.aggregator.drift_tolerance().map(|tol| {
                crowdval_aggregation::moved_rows(
                    &self.current,
                    &next,
                    tol.max(crate::guidance_cache::GUIDANCE_DRIFT_THRESHOLD),
                )
            })
        } else {
            None
        };
        self.shortlist
            .invalidate_changed(self.current.assignment(), next.assignment());
        self.track_churn(&next);
        self.current = next;
        moved
    }

    /// Cold re-anchor: a majority-vote-initialized full aggregation over the
    /// active view, resetting the streaming doubling trigger. Used whenever
    /// the view changed in a way the warm trajectory cannot absorb — a
    /// reinstated worker's returning votes, or a manual tombstone override.
    fn reanchor_cold(&mut self) {
        let next = self
            .aggregator
            .conclude(&self.active_answers, &self.expert, None);
        self.shortlist
            .invalidate_changed(self.current.assignment(), next.assignment());
        self.track_churn(&next);
        self.current = next;
        self.answers_at_last_cold = self.active_answers.matrix().num_answers();
    }

    /// Folds one re-aggregation round into the churn tracker. The moved set
    /// is always re-derived with [`crowdval_aggregation::moved_rows`] at the
    /// guidance drift threshold — one uniform definition across every
    /// conclude path (arrival delta, warm full, cold re-anchor), independent
    /// of whether the guidance cache happens to be maintaining its own
    /// frontier — so the churn feature cannot depend on cache configuration.
    fn track_churn(&mut self, next: &ProbabilisticAnswerSet) {
        if !self.config.triage.enabled {
            return;
        }
        let moved = crowdval_aggregation::moved_rows(
            &self.current,
            next,
            crate::guidance_cache::GUIDANCE_DRIFT_THRESHOLD,
        );
        self.churn.observe_round(&moved, next.num_objects());
    }

    /// Manually overrides one worker's tombstone — an operator ban
    /// (`excluded: true`) or unban (`false`) that bypasses the trust
    /// thresholds. Returns `Ok(true)` when the state actually flipped.
    ///
    /// A flip is an unbounded change to the aggregation view, so the session
    /// re-anchors cold and drops the guidance cache globally. With trust
    /// enforcement enabled the ledger keeps accumulating evidence afterwards:
    /// an unbanned worker whose suspicion still clears the exclusion
    /// threshold will be re-excluded at the next decision point — overrides
    /// adjust state, not evidence.
    pub fn set_worker_excluded(
        &mut self,
        worker: WorkerId,
        excluded: bool,
    ) -> Result<bool, ModelError> {
        if worker.index() >= self.answers.num_workers() {
            return Err(ModelError::WorkerOutOfRange {
                worker: worker.index(),
                num_workers: self.answers.num_workers(),
            });
        }
        self.trust.ensure_workers(self.answers.num_workers());
        if self.handler.is_excluded(worker) == excluded {
            // Keep the ledger's flag aligned with the mask even on a no-op
            // (they can diverge in legacy §5.3 mode, where the detector owns
            // the mask and the ledger only observes).
            self.trust.set_excluded(worker, excluded);
            // Logged even though the mask did not flip: the ledger-flag
            // alignment above is a mutation the replay must reproduce.
            self.log_event(|| SessionEvent::SetWorkerExcluded { worker, excluded });
            return Ok(false);
        }
        self.trust.set_excluded(worker, excluded);
        let mut set = self.handler.excluded();
        if excluded {
            set.push(worker);
            set.sort_unstable();
        } else {
            set.retain(|&w| w != worker);
        }
        self.handler.sync_excluded(&set);
        self.handler.apply_exclusions(&mut self.active_answers);
        self.reanchor_cold();
        self.refresh_guidance_cache(None, None);
        self.log_event(|| SessionEvent::SetWorkerExcluded { worker, excluded });
        Ok(true)
    }

    /// Cumulative online-defense telemetry: batches observed, kappa-gated
    /// batches, exclusions and reinstatements. The ledger tracks even when
    /// enforcement is disabled, so the batch counters move in every mode;
    /// the exclusion counters only move under trust enforcement or manual
    /// overrides.
    pub fn defense_telemetry(&self) -> DefenseTelemetry {
        self.trust.telemetry()
    }

    /// Per-worker trust reports in worker-id order. The `excluded` flag
    /// reflects the session's *actual* tombstone mask — the handler is the
    /// authority in every mode; in legacy §5.3 mode the ledger merely
    /// observes and its own flags stay clear.
    pub fn worker_trust_reports(&self) -> Vec<TrustReport> {
        let mut reports = self.trust.reports(&self.config.trust);
        for report in &mut reports {
            report.excluded = self.handler.is_excluded(report.worker);
        }
        reports
    }

    /// The scoring view of the current validation state: what the guidance
    /// strategies and the confirmation check hand to the
    /// [`crate::scoring::ScoringEngine`]. No entropy cache is attached — the
    /// caller cannot prove it refreshed — so entropies are recomputed on
    /// demand; [`ValidationSession::select_next`] wires the cache in on the
    /// hot path.
    pub fn scoring_context(&self) -> ScoringContext<'_> {
        ScoringContext {
            answers: &self.active_answers,
            expert: &self.expert,
            current: &self.current,
            aggregator: self.aggregator.as_ref(),
            detector: &self.detector,
            parallel: self.config.parallel,
            entropy_cache: None,
        }
    }

    /// Replaces a previously given validation after the expert reconsidered a
    /// flagged object. Counts as one additional unit of expert effort.
    /// Rejects out-of-range objects and labels like
    /// [`ValidationSession::integrate`].
    pub fn revalidate(&mut self, object: ObjectId, label: LabelId) -> Result<(), ModelError> {
        self.check_validation_target(object, label)?;
        self.iteration += 1;
        let error_rate = 1.0 - self.current.assignment().prob(object, label);
        self.expert.set(object, label);
        self.reaggregate();
        // Replacing a validation rewrites history — scores retained under
        // the old validation are not bounds on anything. Global drop.
        self.refresh_guidance_cache(None, None);
        let kind = self
            .strategy
            .as_ref()
            .map_or(StrategyKind::Hybrid, |s| s.last_kind());
        self.record_step(object, label, kind, error_rate);
        self.log_event(|| SessionEvent::Revalidate { object, label });
        Ok(())
    }

    fn record_step(
        &mut self,
        object: ObjectId,
        label: LabelId,
        strategy: StrategyKind,
        error_rate: f64,
    ) {
        let precision = self.precision();
        // Consume the telemetry of the selection that led to this
        // validation; a revalidation (no fresh selection) records zeros.
        let guidance = std::mem::take(&mut self.last_guidance);
        self.trace.steps.push(ValidationStep {
            iteration: self.iteration,
            object,
            label,
            strategy,
            uncertainty: self.current.uncertainty(),
            precision,
            error_rate,
            excluded_workers: self.handler.num_excluded(),
            em_iterations: self.current.em_iterations(),
            guidance,
        });
    }

    /// Batch mode: runs the validation loop against an expert source until
    /// the goal is reached, the budget is exhausted, or every object has been
    /// validated. Returns the trace.
    ///
    /// Fails (leaving the session at the step that failed) when the expert
    /// source hands back a label outside the session's label space.
    pub fn run(
        &mut self,
        expert_source: &mut dyn ExpertSource,
    ) -> Result<&ValidationTrace, ModelError> {
        while !self.is_finished() {
            let Some(object) = self.select_next() else {
                break;
            };
            let label = expert_source.provide_label(object);
            let flagged = self.integrate(object, label)?;
            for suspicious in flagged {
                if self.is_finished() {
                    break;
                }
                let corrected = expert_source.reconsider(suspicious);
                if self.expert.get(suspicious) != Some(corrected) {
                    self.revalidate(suspicious, corrected)?;
                }
            }
        }
        Ok(&self.trace)
    }

    // -----------------------------------------------------------------------
    // Snapshot / restore
    // -----------------------------------------------------------------------

    /// Checkpoints the complete session state into a serializable
    /// [`SessionSnapshot`]. Fails with
    /// [`ModelError::SnapshotUnsupported`] when the session was built with a
    /// custom aggregator or strategy that does not implement state
    /// snapshots; every built-in component does.
    ///
    /// A session restored from the snapshot
    /// ([`ValidationSession::restore`]) resumes **bit-identically**: the
    /// same selection order, the same posterior floats, the same trace as
    /// the uninterrupted run — RNG streams of roulette-wheel strategies
    /// included.
    pub fn snapshot(&self) -> Result<SessionSnapshot, ModelError> {
        let snapshot = self.recovery_snapshot()?;
        // This full snapshot is the new anchor: deltas taken from here on
        // describe changes relative to it, so the log restarts empty.
        // (Interior mutability: re-anchoring is the one place the delta log
        // mutates under `&self`.)
        if let Some(wal) = self.wal.borrow_mut().as_mut() {
            wal.anchor_iteration = self.iteration;
            wal.anchor_votes_ingested = self.votes_ingested;
            wal.events.clear();
        }
        Ok(snapshot)
    }

    /// The same complete checkpoint as [`ValidationSession::snapshot`] but
    /// **without re-anchoring the delta log** — a pure read.
    ///
    /// This is the entry point for *background* checkpoints taken by a
    /// supervisor on behalf of the session's owner: the client-visible
    /// delta-log anchor (the contract behind `SnapshotDelta` /
    /// `RestoreDelta` at the service layer) must not move just because a
    /// crash-recovery anchor was captured. Pair it with
    /// [`ValidationSession::delta_snapshot`] to capture the log itself and
    /// [`ValidationSession::install_delta_log`] to reinstate it verbatim
    /// after a restore.
    pub fn recovery_snapshot(&self) -> Result<SessionSnapshot, ModelError> {
        let aggregator =
            self.aggregator
                .snapshot_state()
                .ok_or(ModelError::SnapshotUnsupported {
                    component: "aggregator",
                })?;
        let strategy = self
            .strategy
            .as_ref()
            .expect("strategy always present outside select")
            .snapshot_state()
            .ok_or(ModelError::SnapshotUnsupported {
                component: "selection strategy",
            })?;
        let snapshot = SessionSnapshot {
            format_version: crate::snapshot::SNAPSHOT_FORMAT_VERSION,
            answers: self.answers.clone(),
            expert: self.expert.clone(),
            handler: self.handler.clone(),
            trust: self.trust.clone(),
            detector: *self.detector.config(),
            config: self.config,
            ground_truth: self.ground_truth.clone(),
            current: self.current.clone(),
            trace: self.trace.clone(),
            iteration: self.iteration,
            votes_ingested: self.votes_ingested,
            answers_at_last_cold: self.answers_at_last_cold,
            churn: self.churn.clone(),
            triage: self.triage.clone(),
            aggregator,
            strategy,
        };
        Ok(snapshot)
    }

    /// Rebuilds a session from a [`SessionSnapshot`], validating that the
    /// snapshot's parts agree with each other before touching anything. The
    /// restored session continues exactly where the snapshotted one left
    /// off — no re-aggregation happens on restore; the stored posterior *is*
    /// the warm-start state.
    pub fn restore(snapshot: SessionSnapshot) -> Result<ValidationSession, ModelError> {
        if snapshot.format_version != crate::snapshot::SNAPSHOT_FORMAT_VERSION {
            return Err(ModelError::InvalidSnapshot {
                message: format!(
                    "snapshot format v{} not supported (this build reads v{})",
                    snapshot.format_version,
                    crate::snapshot::SNAPSHOT_FORMAT_VERSION
                ),
            });
        }
        let answers = snapshot.answers;
        if snapshot.current.num_objects() != answers.num_objects()
            || snapshot.current.num_workers() != answers.num_workers()
            || snapshot.current.num_labels() != answers.num_labels()
        {
            return Err(ModelError::InvalidSnapshot {
                message: format!(
                    "posterior shape {}x{}x{} does not match the answer set's {}x{}x{}",
                    snapshot.current.num_objects(),
                    snapshot.current.num_workers(),
                    snapshot.current.num_labels(),
                    answers.num_objects(),
                    answers.num_workers(),
                    answers.num_labels(),
                ),
            });
        }
        if snapshot.expert.num_objects() != answers.num_objects() {
            return Err(ModelError::InvalidSnapshot {
                message: format!(
                    "expert domain covers {} objects, answer set has {}",
                    snapshot.expert.num_objects(),
                    answers.num_objects()
                ),
            });
        }
        for (_, label) in snapshot.expert.iter() {
            if label.index() >= answers.num_labels() {
                return Err(ModelError::LabelOutOfRange {
                    label: label.index(),
                    num_labels: answers.num_labels(),
                });
            }
        }
        if let Some(truth) = &snapshot.ground_truth {
            if let Some(max_label) = truth.max_label_index() {
                if max_label >= answers.num_labels() {
                    return Err(ModelError::LabelOutOfRange {
                        label: max_label,
                        num_labels: answers.num_labels(),
                    });
                }
            }
        }
        // Deep consistency of deserialized internals. Snapshots cross the
        // service's trust boundary, so everything the EM kernels index into
        // must be proven in-range here — a malformed snapshot must be a
        // typed error, never a later panic.
        if let Some(max_label) = answers.matrix().max_label_index() {
            if max_label >= answers.num_labels() {
                return Err(ModelError::LabelOutOfRange {
                    label: max_label,
                    num_labels: answers.num_labels(),
                });
            }
        }
        if snapshot.current.priors().len() != answers.num_labels() {
            return Err(ModelError::InvalidSnapshot {
                message: format!(
                    "posterior carries {} label priors, answer set has {} labels",
                    snapshot.current.priors().len(),
                    answers.num_labels()
                ),
            });
        }
        for (w, confusion) in snapshot.current.confusions().iter().enumerate() {
            let m = confusion.matrix();
            if m.rows() != answers.num_labels() || m.cols() != answers.num_labels() {
                return Err(ModelError::InvalidSnapshot {
                    message: format!(
                        "worker {w}'s confusion matrix is {}x{}, expected {}x{}",
                        m.rows(),
                        m.cols(),
                        answers.num_labels(),
                        answers.num_labels()
                    ),
                });
            }
        }
        // The active view is derived state: full stream + tombstones.
        let mut active_answers = answers.clone();
        active_answers.set_excluded_workers(&snapshot.handler.excluded());
        let mut shortlist = EntropyShortlist::new();
        shortlist.ensure_len(answers.num_objects());
        let mut trust = snapshot.trust;
        trust.ensure_workers(answers.num_workers());
        Ok(ValidationSession {
            answers,
            active_answers,
            aggregator: snapshot.aggregator.into_aggregator(),
            strategy: Some(snapshot.strategy.into_strategy()),
            detector: SpammerDetector::new(snapshot.detector),
            handler: snapshot.handler,
            trust,
            config: snapshot.config,
            ground_truth: snapshot.ground_truth,
            expert: snapshot.expert,
            current: snapshot.current,
            shortlist,
            // The guidance cache is not part of the snapshot: it is rebuilt
            // lazily, and exactness-on-miss means the restored session's
            // first selection is a full re-score with the same exact argmax.
            guidance: RefCell::new(GuidanceCache::new()),
            last_guidance: GuidanceTelemetry::default(),
            trace: snapshot.trace,
            iteration: snapshot.iteration,
            votes_ingested: snapshot.votes_ingested,
            answers_at_last_cold: snapshot.answers_at_last_cold,
            churn: snapshot.churn,
            triage: snapshot.triage,
            wal: RefCell::new(None),
        })
    }

    /// Restores the anchoring full snapshot, then replays the delta's event
    /// log through the same public entry points the live session used —
    /// ingest batches, selections (advancing the strategy's RNG streams),
    /// validations and exclusion overrides — yielding a session
    /// **bit-identical** to the one the delta was taken from.
    ///
    /// Fails with a typed error when the delta does not anchor at this
    /// snapshot, or when a replayed selection disagrees with the recorded
    /// pick (which would mean snapshot and delta are from different runs).
    /// The restored session starts with its own delta log disabled.
    pub fn restore_with_delta(
        snapshot: SessionSnapshot,
        delta: SessionDelta,
    ) -> Result<ValidationSession, ModelError> {
        if delta.format_version != crate::snapshot::SNAPSHOT_FORMAT_VERSION {
            return Err(ModelError::InvalidSnapshot {
                message: format!(
                    "delta format v{} not supported (this build reads v{})",
                    delta.format_version,
                    crate::snapshot::SNAPSHOT_FORMAT_VERSION
                ),
            });
        }
        let mut session = Self::restore(snapshot)?;
        if delta.anchor_iteration != session.iteration
            || delta.anchor_votes_ingested != session.votes_ingested
        {
            return Err(ModelError::InvalidSnapshot {
                message: format!(
                    "delta anchored at iteration {} / {} votes does not match the \
                     snapshot's iteration {} / {} votes",
                    delta.anchor_iteration,
                    delta.anchor_votes_ingested,
                    session.iteration,
                    session.votes_ingested
                ),
            });
        }
        for event in delta.events {
            match event {
                SessionEvent::Ingest { votes } => {
                    session.ingest(&votes)?;
                }
                SessionEvent::Select { picked } => {
                    let got = session.select_next();
                    if got != picked {
                        return Err(ModelError::InvalidSnapshot {
                            message: format!(
                                "delta replay diverged: select_next picked {got:?}, \
                                 the log recorded {picked:?}"
                            ),
                        });
                    }
                }
                SessionEvent::Integrate { object, label } => {
                    session.integrate(object, label)?;
                }
                SessionEvent::Revalidate { object, label } => {
                    session.revalidate(object, label)?;
                }
                SessionEvent::SetWorkerExcluded { worker, excluded } => {
                    session.set_worker_excluded(worker, excluded)?;
                }
            }
        }
        Ok(session)
    }

    // -----------------------------------------------------------------------
    // Incremental checkpoints (delta log)
    // -----------------------------------------------------------------------

    /// Turns on the write-ahead log behind [`ValidationSession::delta_snapshot`],
    /// anchored at the session's current state. Every subsequent full
    /// [`ValidationSession::snapshot`] re-anchors the log (clearing it), so
    /// the usual cadence is: enable once, take a full snapshot, then take
    /// cheap deltas until the next full snapshot.
    ///
    /// The log costs `O(events since anchor)` memory — bounded by the full
    ///-snapshot cadence, not by corpus size.
    pub fn enable_delta_log(&mut self) {
        *self.wal.get_mut() = Some(SessionWal {
            anchor_iteration: self.iteration,
            anchor_votes_ingested: self.votes_ingested,
            events: Vec::new(),
        });
    }

    /// Disables the delta log and drops any pending events.
    pub fn disable_delta_log(&mut self) {
        *self.wal.get_mut() = None;
    }

    /// Whether the delta log is currently recording.
    pub fn delta_log_enabled(&self) -> bool {
        self.wal.borrow().is_some()
    }

    /// An incremental checkpoint: the events applied since the anchoring
    /// full snapshot, replayable via
    /// [`ValidationSession::restore_with_delta`]. `O(events)` — no corpus
    /// clone, which is what makes checkpoint stalls flat at million-object
    /// scale. Fails when the delta log is not enabled.
    pub fn delta_snapshot(&self) -> Result<SessionDelta, ModelError> {
        let wal = self.wal.borrow();
        let Some(wal) = wal.as_ref() else {
            return Err(ModelError::SnapshotUnsupported {
                component: "delta log (call enable_delta_log first)",
            });
        };
        Ok(SessionDelta {
            format_version: crate::snapshot::SNAPSHOT_FORMAT_VERSION,
            anchor_iteration: wal.anchor_iteration,
            anchor_votes_ingested: wal.anchor_votes_ingested,
            events: wal.events.clone(),
        })
    }

    /// Reinstates a previously captured delta log verbatim — anchor counters
    /// and pending events included — on a freshly restored session.
    ///
    /// This is the recovery counterpart of
    /// [`ValidationSession::recovery_snapshot`]: a supervisor that rebuilds a
    /// crashed session from a background anchor must put the *client-visible*
    /// delta log back exactly as the client last saw it, so a `SnapshotDelta`
    /// taken after recovery is indistinguishable from one taken before the
    /// crash. Fails with a typed error on a format-version mismatch.
    pub fn install_delta_log(&mut self, delta: SessionDelta) -> Result<(), ModelError> {
        if delta.format_version != crate::snapshot::SNAPSHOT_FORMAT_VERSION {
            return Err(ModelError::InvalidSnapshot {
                message: format!(
                    "delta log format v{} not supported (this build reads v{})",
                    delta.format_version,
                    crate::snapshot::SNAPSHOT_FORMAT_VERSION
                ),
            });
        }
        *self.wal.get_mut() = Some(SessionWal {
            anchor_iteration: delta.anchor_iteration,
            anchor_votes_ingested: delta.anchor_votes_ingested,
            events: delta.events,
        });
        Ok(())
    }

    /// Appends an event to the delta log, if it is recording.
    fn log_event(&mut self, event: impl FnOnce() -> SessionEvent) {
        if let Some(wal) = self.wal.get_mut().as_mut() {
            wal.events.push(event());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::EntropyBaseline;
    use crowdval_model::LabelId;
    use crowdval_sim::{PopulationMix, SyntheticConfig};

    fn votes_of(answers: &AnswerSet) -> Vec<Vote> {
        answers
            .matrix()
            .iter()
            .map(|(o, w, l)| Vote::new(o, w, l))
            .collect()
    }

    fn reliable_synth(seed: u64, objects: usize) -> crowdval_sim::SyntheticDataset {
        SyntheticConfig {
            num_objects: objects,
            num_workers: 12,
            reliability: 0.85,
            mix: PopulationMix::all_reliable(),
            ..SyntheticConfig::paper_default(seed)
        }
        .generate()
    }

    #[test]
    fn empty_session_accepts_streamed_votes() {
        let synth = reliable_synth(11, 16);
        let votes = votes_of(synth.dataset.answers());
        let mut session = ValidationSessionBuilder::empty(2)
            .strategy(Box::new(EntropyBaseline))
            .build();
        assert_eq!(session.answers().num_objects(), 0);
        let update = session.ingest(&votes).unwrap();
        assert_eq!(update.votes_ingested, votes.len());
        assert_eq!(update.new_objects, 16);
        assert_eq!(update.new_workers, 12);
        assert_eq!(session.answers().num_objects(), 16);
        assert_eq!(session.expert().num_objects(), 16);
        assert!(session.uncertainty().is_finite());
    }

    #[test]
    fn incremental_ingestion_matches_batch_build() {
        let synth = reliable_synth(23, 20);
        let answers = synth.dataset.answers().clone();
        let truth = synth.dataset.ground_truth().clone();
        let votes = votes_of(&answers);

        // Batch: everything known up front.
        let batch = crowdval_aggregation::IncrementalEm::default().conclude(
            &answers,
            &ExpertValidation::empty(20),
            None,
        );

        // Streaming: three uneven batches through a session.
        let mut session = ValidationSessionBuilder::empty(2)
            .strategy(Box::new(EntropyBaseline))
            .ground_truth(truth)
            .build();
        for chunk in votes.chunks(votes.len() / 3 + 1) {
            session.ingest(chunk).unwrap();
        }
        let diff = batch
            .assignment()
            .max_abs_diff(session.current().assignment());
        assert!(
            diff <= 1e-2,
            "streamed posterior diverged from the batch build by {diff}"
        );
        // Precision over the overlap is available mid-stream.
        assert!(session.precision().unwrap() > 0.8);
    }

    #[test]
    fn ingest_grows_mid_validation_and_guidance_continues() {
        let synth = reliable_synth(31, 24);
        let answers = synth.dataset.answers().clone();
        let truth = synth.dataset.ground_truth().clone();
        let votes = votes_of(&answers);
        let (first, rest) = votes.split_at(votes.len() / 2);

        let mut session = ValidationSessionBuilder::empty(2)
            .strategy(Box::new(EntropyBaseline))
            .ground_truth(truth.clone())
            .build();
        session.ingest(first).unwrap();

        // Two validations before the rest of the stream arrives.
        for _ in 0..2 {
            let o = session.select_next().expect("candidates exist");
            session.integrate(o, truth.label(o)).unwrap();
        }
        let before = session.answers().num_objects();
        let update = session.ingest(rest).unwrap();
        assert!(session.answers().num_objects() >= before);
        assert!(update.em_iterations >= 1);
        // Validations survive the arrival and stay pinned.
        for (o, l) in session.expert().iter() {
            assert_eq!(session.current().assignment().prob(o, l), 1.0);
        }
        // Guidance keeps working on the grown candidate set.
        let next = session.select_next().expect("candidates exist");
        assert!(next.index() < session.answers().num_objects());
        assert!(session.expert().get(next).is_none());
    }

    #[test]
    fn bad_labels_are_rejected_atomically() {
        let mut session = ValidationSessionBuilder::empty(2).build();
        let batch = [
            Vote::new(ObjectId(0), WorkerId(0), LabelId(0)),
            Vote::new(ObjectId(1), WorkerId(0), LabelId(7)),
        ];
        assert!(session.ingest(&batch).is_err());
        // Nothing was absorbed: the first (valid) vote must not have landed.
        assert_eq!(session.answers().num_objects(), 0);
        assert_eq!(session.votes_ingested(), 0);
    }

    #[test]
    fn empty_batches_are_cheap_noops() {
        let mut session = ValidationSessionBuilder::empty(2).build();
        let update = session.ingest(&[]).unwrap();
        assert_eq!(update.votes_ingested, 0);
        assert_eq!(update.touched_objects, Vec::<ObjectId>::new());
    }

    #[test]
    fn integrate_rejects_out_of_range_targets_without_mutation() {
        let synth = reliable_synth(61, 8);
        let mut session = ValidationSessionBuilder::new(synth.dataset.answers().clone())
            .strategy(Box::new(EntropyBaseline))
            .build();
        let before = session.current().clone();
        assert!(matches!(
            session.integrate(ObjectId(99), LabelId(0)),
            Err(ModelError::ObjectOutOfRange { .. })
        ));
        assert!(matches!(
            session.integrate(ObjectId(0), LabelId(9)),
            Err(ModelError::LabelOutOfRange { .. })
        ));
        assert!(matches!(
            session.revalidate(ObjectId(99), LabelId(0)),
            Err(ModelError::ObjectOutOfRange { .. })
        ));
        // Nothing moved: no iteration counted, no trace step, same posterior.
        assert_eq!(session.iterations(), 0);
        assert_eq!(session.trace().len(), 0);
        assert_eq!(session.expert().count(), 0);
        assert_eq!(session.current(), &before);
    }

    #[test]
    fn try_build_validates_label_count_consistency() {
        use crate::goal::ValidationGoal;
        let synth = reliable_synth(67, 8);
        let answers = synth.dataset.answers().clone();

        // Ground truth speaking a wider label space than the answer set.
        let bad_truth = GroundTruth::new(vec![LabelId(5); answers.num_objects()]);
        let err = ValidationSessionBuilder::new(answers.clone())
            .ground_truth(bad_truth)
            .try_build()
            .err()
            .expect("expected a build error");
        assert!(matches!(err, ModelError::LabelOutOfRange { label: 5, .. }));

        // Precision goal without a ground truth can never be evaluated.
        let err = ValidationSessionBuilder::new(answers.clone())
            .config(ProcessConfig {
                goal: ValidationGoal::TargetPrecision(0.9),
                ..ProcessConfig::default()
            })
            .try_build()
            .err()
            .expect("expected a build error");
        assert!(matches!(err, ModelError::InvalidConfig { .. }));

        // Out-of-range precision target.
        let err = ValidationSessionBuilder::new(answers.clone())
            .config(ProcessConfig {
                goal: ValidationGoal::TargetPrecision(1.5),
                ..ProcessConfig::default()
            })
            .ground_truth(synth.dataset.ground_truth().clone())
            .try_build()
            .err()
            .expect("expected a build error");
        assert!(matches!(err, ModelError::InvalidConfig { .. }));

        // A consistent configuration builds.
        assert!(ValidationSessionBuilder::new(answers)
            .ground_truth(synth.dataset.ground_truth().clone())
            .try_build()
            .is_ok());
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically_mid_run() {
        let synth = reliable_synth(71, 20);
        let answers = synth.dataset.answers().clone();
        let truth = synth.dataset.ground_truth().clone();
        let votes = votes_of(&answers);
        let (first, rest) = votes.split_at(votes.len() * 2 / 3);

        // The hybrid strategy exercises the RNG checkpoint.
        let build = || {
            ValidationSessionBuilder::empty(2)
                .strategy(Box::new(crate::strategy::HybridStrategy::new(13)))
                .ground_truth(truth.clone())
                .build()
        };
        let drive = |session: &mut ValidationSession, picks: &mut Vec<ObjectId>| {
            for _ in 0..3 {
                let o = session.select_next().expect("candidates exist");
                picks.push(o);
                session.integrate(o, truth.label(o)).unwrap();
            }
        };

        // Uninterrupted reference run.
        let mut reference = build();
        let mut ref_picks = Vec::new();
        reference.ingest(first).unwrap();
        drive(&mut reference, &mut ref_picks);
        reference.ingest(rest).unwrap();
        drive(&mut reference, &mut ref_picks);

        // Interrupted run: snapshot after the first drive, restore, continue.
        let mut session = build();
        let mut picks = Vec::new();
        session.ingest(first).unwrap();
        drive(&mut session, &mut picks);
        let snapshot = session.snapshot().unwrap();
        drop(session);
        let mut restored = ValidationSession::restore(snapshot).unwrap();
        restored.ingest(rest).unwrap();
        drive(&mut restored, &mut picks);

        assert_eq!(picks, ref_picks, "selection order diverged after restore");
        assert_eq!(
            restored.current(),
            reference.current(),
            "posterior diverged after restore"
        );
        assert_eq!(restored.trace(), reference.trace());
        assert_eq!(restored.iterations(), reference.iterations());
        assert_eq!(restored.votes_ingested(), reference.votes_ingested());
    }

    #[test]
    fn restore_rejects_inconsistent_snapshots() {
        let synth = reliable_synth(73, 10);
        let session = ValidationSessionBuilder::new(synth.dataset.answers().clone())
            .strategy(Box::new(EntropyBaseline))
            .build();
        let good = session.snapshot().unwrap();

        let mut wrong_version = good.clone();
        wrong_version.format_version += 1;
        assert!(matches!(
            ValidationSession::restore(wrong_version),
            Err(ModelError::InvalidSnapshot { .. })
        ));

        let mut wrong_shape = good.clone();
        wrong_shape.current = crowdval_model::ProbabilisticAnswerSet::uninformed(3, 2, 2);
        assert!(matches!(
            ValidationSession::restore(wrong_shape),
            Err(ModelError::InvalidSnapshot { .. })
        ));

        let mut wrong_expert = good.clone();
        wrong_expert.expert = ExpertValidation::empty(1);
        assert!(matches!(
            ValidationSession::restore(wrong_expert),
            Err(ModelError::InvalidSnapshot { .. })
        ));

        // Deep posterior inconsistencies the EM kernels would index into.
        let mut wrong_confusions = good.clone();
        wrong_confusions.current = crowdval_model::ProbabilisticAnswerSet::new(
            good.current.assignment().clone(),
            vec![crowdval_model::ConfusionMatrix::uniform(1); good.current.num_workers()],
            good.current.priors().to_vec(),
            good.current.em_iterations(),
        );
        assert!(matches!(
            ValidationSession::restore(wrong_confusions),
            Err(ModelError::InvalidSnapshot { .. })
        ));

        let mut wrong_priors = good.clone();
        wrong_priors.current = crowdval_model::ProbabilisticAnswerSet::new(
            good.current.assignment().clone(),
            good.current.confusions().to_vec(),
            vec![1.0; 7],
            good.current.em_iterations(),
        );
        assert!(matches!(
            ValidationSession::restore(wrong_priors),
            Err(ModelError::InvalidSnapshot { .. })
        ));

        assert!(ValidationSession::restore(good).is_ok());
    }

    #[test]
    fn worker_churn_mid_session_is_absorbed() {
        let synth = reliable_synth(47, 12);
        let answers = synth.dataset.answers().clone();
        let mut session = ValidationSessionBuilder::empty(2)
            .strategy(Box::new(EntropyBaseline))
            .build();
        // First only workers 0..6 vote; then the rest join.
        let votes = votes_of(&answers);
        let (early, late): (Vec<Vote>, Vec<Vote>) =
            votes.iter().partition(|v| v.worker.index() < 6);
        session.ingest(&early).unwrap();
        assert_eq!(session.answers().num_workers(), 6);
        let update = session.ingest(&late).unwrap();
        assert_eq!(update.new_workers, 6);
        assert_eq!(session.answers().num_workers(), 12);
        assert_eq!(
            session.current().num_workers(),
            session.answers().num_workers()
        );
    }

    /// The single-owner invariant, pinned at compile time: a session (and
    /// its builder parts) can be *moved* to another thread — the sharded
    /// service runtime hands each session to exactly one shard worker —
    /// while concurrent sharing stays unsupported (the type is not `Sync`;
    /// the `RefCell` guidance cache makes that structural, not just
    /// conventional).
    #[test]
    fn sessions_move_between_threads_but_are_single_owner() {
        fn assert_send<T: Send>() {}
        assert_send::<ValidationSession>();
        assert_send::<Box<dyn SelectionStrategy>>();
        assert_send::<Box<dyn Aggregator>>();

        // Exercise the move: build on this thread, drive on another.
        let synth = reliable_synth(48, 6);
        let votes = votes_of(synth.dataset.answers());
        let mut session = ValidationSessionBuilder::empty(2)
            .strategy(Box::new(EntropyBaseline))
            .build();
        let handle = std::thread::spawn(move || {
            session.ingest(&votes).unwrap();
            session
        });
        let session = handle.join().unwrap();
        assert_eq!(session.answers().num_workers(), 12);
    }

    /// Streams an honest synthetic corpus in batches with one extra
    /// constant-answer spammer riding along (worker id 12, always label 1).
    fn stream_with_constant_spammer(
        config: ProcessConfig,
    ) -> (ValidationSession, Vec<SessionUpdate>) {
        let synth = reliable_synth(77, 24);
        let truth = synth.dataset.ground_truth().clone();
        let mut votes = votes_of(synth.dataset.answers());
        votes.sort_by_key(|v| v.object);
        let mut session = ValidationSessionBuilder::empty(2)
            .strategy(Box::new(EntropyBaseline))
            .ground_truth(truth)
            .config(config)
            .build();
        let mut updates = Vec::new();
        for chunk in votes.chunks(votes.len() / 4 + 1) {
            let mut batch = chunk.to_vec();
            let mut objects: Vec<ObjectId> = chunk.iter().map(|v| v.object).collect();
            objects.sort();
            objects.dedup();
            batch.extend(
                objects
                    .into_iter()
                    .map(|o| Vote::new(o, WorkerId(12), LabelId(1))),
            );
            updates.push(session.ingest(&batch).unwrap());
        }
        (session, updates)
    }

    #[test]
    fn streaming_defense_tombstones_a_constant_answer_spammer() {
        let config = ProcessConfig {
            trust: crowdval_spammer::TrustConfig::streaming_default(),
            ..ProcessConfig::default()
        };
        let (session, updates) = stream_with_constant_spammer(config);
        let excluded: Vec<WorkerId> = updates
            .iter()
            .flat_map(|u| u.workers_excluded.iter().copied())
            .collect();
        assert_eq!(excluded, vec![WorkerId(12)], "spammer not tombstoned");
        assert_eq!(session.excluded_workers(), vec![WorkerId(12)]);
        let telemetry = session.defense_telemetry();
        assert_eq!(telemetry.exclusions, 1);
        assert_eq!(telemetry.heuristic_exclusions, 1);
        assert!(telemetry.batches_observed >= 4);
        let report = &session.worker_trust_reports()[12];
        assert!(report.excluded);
        assert!(report.suspicion >= config.trust.exclusion_threshold);
        // No honest worker was caught in the sweep.
        assert!(session
            .worker_trust_reports()
            .iter()
            .take(12)
            .all(|r| !r.excluded));
    }

    #[test]
    fn default_config_tracks_trust_but_never_enforces() {
        let (session, updates) = stream_with_constant_spammer(ProcessConfig::default());
        assert!(updates
            .iter()
            .all(|u| u.workers_excluded.is_empty() && u.workers_reinstated.is_empty()));
        assert_eq!(session.defense_telemetry().exclusions, 0);
        // Tracking still ran: the ledger knows the spammer looks suspicious.
        let config = crowdval_spammer::TrustConfig::streaming_default();
        let reports = session.worker_trust_reports();
        assert!(reports[12].votes > 0);
        assert!(reports[12].suspicion >= config.exclusion_threshold);
    }

    #[test]
    fn manual_tombstone_overrides_round_trip() {
        let synth = reliable_synth(83, 12);
        let mut session = ValidationSessionBuilder::new(synth.dataset.answers().clone())
            .strategy(Box::new(EntropyBaseline))
            .build();
        assert!(matches!(
            session.set_worker_excluded(WorkerId(99), true),
            Err(ModelError::WorkerOutOfRange { .. })
        ));
        assert!(session.set_worker_excluded(WorkerId(3), true).unwrap());
        assert_eq!(session.excluded_workers(), vec![WorkerId(3)]);
        // Idempotent: repeating the ban is a no-op.
        assert!(!session.set_worker_excluded(WorkerId(3), true).unwrap());
        // Validation-driven guidance still works with the mask in place.
        let truth = synth.dataset.ground_truth().clone();
        let o = session.select_next().expect("candidates exist");
        session.integrate(o, truth.label(o)).unwrap();
        assert!(session.set_worker_excluded(WorkerId(3), false).unwrap());
        assert!(session.excluded_workers().is_empty());
        let telemetry = session.defense_telemetry();
        assert_eq!(telemetry.exclusions, 1);
        assert_eq!(telemetry.reinstatements, 1);
    }

    #[test]
    fn trust_ledger_survives_snapshot_restore() {
        let config = ProcessConfig {
            trust: crowdval_spammer::TrustConfig::streaming_default(),
            ..ProcessConfig::default()
        };
        let (session, _) = stream_with_constant_spammer(config);
        let snapshot = session.snapshot().unwrap();
        let json = serde_json::to_string(&snapshot).unwrap();
        let reread: SessionSnapshot = serde_json::from_str(&json).unwrap();
        let restored = ValidationSession::restore(reread).unwrap();
        assert_eq!(restored.defense_telemetry(), session.defense_telemetry());
        assert_eq!(restored.excluded_workers(), session.excluded_workers());
        assert_eq!(
            restored.worker_trust_reports(),
            session.worker_trust_reports()
        );
    }
}
