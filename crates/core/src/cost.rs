//! The expert-vs-crowd cost model (paper §6.8).
//!
//! Two ways of spending money on result quality are compared:
//!
//! * **EV** — collect an initial set of crowd answers (average cost `φ₀` per
//!   object) and then pay an expert, who is `θ` times more expensive per
//!   answer than a crowd worker, to validate `i` answers:
//!   `P_EV = n·φ₀ + θ·i`, i.e. `φ₀ + θ·i/n` per object.
//! * **WO** — spend everything on additional crowd answers, raising the
//!   average per-object cost to `φ > φ₀`: `P_WO = n·φ`.
//!
//! Under a fixed budget `b = ρ·θ·n` the model also answers how to split the
//! budget between crowd answers and expert validations, optionally subject to
//! a completion-time constraint expressed as a cap on the number of expert
//! validations (expert time dominates completion time because crowd workers
//! answer concurrently).

use serde::{Deserialize, Serialize};

/// Cost-model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Expert-to-crowd cost ratio `θ` (the paper estimates ≈ 12.5 from AMT
    /// and ILO wage statistics).
    pub theta: f64,
    /// Number of objects `n`.
    pub num_objects: usize,
}

impl CostModel {
    /// Creates a cost model.
    pub fn new(theta: f64, num_objects: usize) -> Self {
        assert!(
            theta > 0.0,
            "the expert-to-crowd cost ratio must be positive"
        );
        assert!(num_objects > 0, "the cost model needs at least one object");
        Self { theta, num_objects }
    }

    /// The paper's default ratio θ = 12.5 ($25/h expert vs. $2/h crowd).
    pub fn paper_default(num_objects: usize) -> Self {
        Self::new(12.5, num_objects)
    }

    /// Per-object cost of the EV strategy after `validations` expert answers
    /// on top of `phi0` crowd answers per object.
    pub fn ev_cost_per_object(&self, phi0: f64, validations: usize) -> f64 {
        phi0 + self.theta * validations as f64 / self.num_objects as f64
    }

    /// Per-object cost of the WO strategy with `phi` crowd answers per
    /// object.
    pub fn wo_cost_per_object(&self, phi: f64) -> f64 {
        phi
    }

    /// Number of expert validations affordable with a per-object budget of
    /// `budget_per_object` when `phi0` is already spent on crowd answers.
    pub fn affordable_validations(&self, budget_per_object: f64, phi0: f64) -> usize {
        if budget_per_object <= phi0 {
            return 0;
        }
        (((budget_per_object - phi0) * self.num_objects as f64) / self.theta).floor() as usize
    }

    /// Total budget corresponding to the paper's parameterization
    /// `b = ρ·θ·n` (ρ ∈ [1/θ, 1]).
    pub fn budget_for_rho(&self, rho: f64) -> f64 {
        rho * self.theta * self.num_objects as f64
    }

    /// Enumerates the possible splits of a fixed total budget between crowd
    /// answers and expert validations. `crowd_share` runs over
    /// `granularity + 1` evenly spaced points in `[min_crowd_share, 1]` where
    /// the minimum share buys at least one answer per object.
    pub fn allocations(&self, total_budget: f64, granularity: usize) -> Vec<BudgetAllocation> {
        let n = self.num_objects as f64;
        let min_crowd_budget = n; // at least one crowd answer per object
        let mut allocations = Vec::new();
        for step in 0..=granularity {
            let crowd_share = step as f64 / granularity as f64;
            let crowd_budget = crowd_share * total_budget;
            if crowd_budget < min_crowd_budget {
                continue;
            }
            let phi0 = crowd_budget / n;
            let expert_budget = total_budget - crowd_budget;
            let validations = (expert_budget / self.theta).floor() as usize;
            allocations.push(BudgetAllocation {
                crowd_share,
                phi0,
                validations: validations.min(self.num_objects),
            });
        }
        allocations
    }
}

/// One way of splitting a fixed budget between the crowd and the expert.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetAllocation {
    /// Fraction of the budget spent on crowd answers.
    pub crowd_share: f64,
    /// Resulting average number of crowd answers per object (`φ₀`).
    pub phi0: f64,
    /// Number of expert validations affordable with the remainder.
    pub validations: usize,
}

impl BudgetAllocation {
    /// Whether this allocation satisfies a completion-time constraint
    /// expressed as a maximum number of expert validations (expert time is
    /// the dominant component of completion time, §6.8).
    pub fn satisfies_time_constraint(&self, max_validations: usize) -> bool {
        self.validations <= max_validations
    }
}

/// One measured point of a cost-vs-quality curve (Fig. 12/21–23).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostPoint {
    /// Per-object cost.
    pub cost_per_object: f64,
    /// Precision of the deterministic assignment at that cost.
    pub precision: f64,
    /// Precision improvement relative to the initial state, in `[0, 1]`.
    pub precision_improvement: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ev_and_wo_costs() {
        let m = CostModel::paper_default(100);
        assert!((m.ev_cost_per_object(3.0, 0) - 3.0).abs() < 1e-12);
        // 40 validations over 100 objects at θ = 12.5 adds 5 per object.
        assert!((m.ev_cost_per_object(3.0, 40) - 8.0).abs() < 1e-12);
        assert_eq!(m.wo_cost_per_object(7.0), 7.0);
    }

    #[test]
    fn affordable_validations_inverts_the_cost() {
        let m = CostModel::new(25.0, 200);
        assert_eq!(m.affordable_validations(13.0, 13.0), 0);
        assert_eq!(m.affordable_validations(12.0, 13.0), 0);
        // One extra unit per object = 200 total = 8 validations at θ=25.
        assert_eq!(m.affordable_validations(14.0, 13.0), 8);
    }

    #[test]
    fn budget_for_rho_matches_definition() {
        let m = CostModel::new(25.0, 50);
        assert!((m.budget_for_rho(0.4) - 0.4 * 25.0 * 50.0).abs() < 1e-9);
    }

    #[test]
    fn allocations_cover_crowd_only_to_expert_heavy() {
        let m = CostModel::new(25.0, 50);
        let budget = m.budget_for_rho(0.5); // 625
        let allocations = m.allocations(budget, 10);
        assert!(!allocations.is_empty());
        // Every allocation buys at least one crowd answer per object.
        for a in &allocations {
            assert!(a.phi0 >= 1.0);
            assert!(a.validations <= 50);
        }
        // The crowd-only end has zero validations.
        let crowd_only = allocations.last().unwrap();
        assert!((crowd_only.crowd_share - 1.0).abs() < 1e-12);
        assert_eq!(crowd_only.validations, 0);
        // More crowd share means fewer validations.
        for pair in allocations.windows(2) {
            assert!(pair[0].validations >= pair[1].validations);
        }
    }

    #[test]
    fn time_constraint_filters_allocations() {
        let a = BudgetAllocation {
            crowd_share: 0.5,
            phi0: 6.0,
            validations: 20,
        };
        assert!(a.satisfies_time_constraint(20));
        assert!(!a.satisfies_time_constraint(19));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_theta_is_rejected() {
        CostModel::new(0.0, 10);
    }
}
