//! Spammer audit: a worker community with 35 % spammers is cleaned up by the
//! worker-driven guidance strategy. The example shows which workers get
//! excluded, how detection precision/recall evolve with expert effort, and
//! what that does to result correctness.
//!
//! Run with `cargo run --release --example spammer_audit`.

use crowd_validation::prelude::*;

fn main() {
    // A synthetic crowd with an unusually high share of spammers.
    let data = SyntheticConfig {
        num_objects: 60,
        num_workers: 24,
        mix: PopulationMix::with_spammer_ratio(0.35),
        ..SyntheticConfig::paper_default(555)
    }
    .generate();
    let answers = data.dataset.answers().clone();
    let truth = data.dataset.ground_truth().clone();
    let truly_faulty = data.faulty_workers();
    println!(
        "crowd: {} workers, of which {} are truly faulty (spammers or sloppy)",
        answers.num_workers(),
        truly_faulty.len()
    );

    // Worker-driven guidance with faulty-worker handling enabled.
    let detector = SpammerDetector::new(DetectorConfig::paper_default());
    let mut process = ValidationProcess::builder(answers.clone())
        .strategy(Box::new(WorkerDriven))
        .detector(detector)
        .config(ProcessConfig {
            budget: Some(36),
            ..ProcessConfig::default()
        })
        .ground_truth(truth.clone())
        .build();
    let mut expert = SimulatedExpert::perfect(truth.clone(), 2);

    println!(
        "\n effort | excluded workers | detection precision | detection recall | result precision"
    );
    println!(
        " -------+------------------+---------------------+------------------+-----------------"
    );
    while !process.is_finished() {
        let Some(object) = process.select_next() else {
            break;
        };
        let label = expert.validate(object);
        process
            .integrate(object, label)
            .expect("simulated labels are in range");

        let step = process.trace().steps.last().unwrap();
        if step.iteration.is_multiple_of(6) {
            let outcome = SpammerDetector::new(DetectorConfig::paper_default()).detect(
                &answers,
                process.expert(),
                process.current().priors(),
            );
            println!(
                "  {:>4}% | {:>16} | {:>19.2} | {:>16.2} | {:>15.3}",
                (100 * step.iteration) / answers.num_objects(),
                step.excluded_workers,
                outcome.precision(&truly_faulty),
                outcome.recall(&truly_faulty),
                step.precision.unwrap_or(f64::NAN),
            );
        }
    }

    println!("\nworkers excluded at the end of the audit:");
    for w in process.excluded_workers() {
        let kind = data.profiles[w.index()].kind();
        println!("  {w}  (true type: {kind:?})");
    }

    // How much did handling the spammers matter? Re-run without exclusions.
    let mut without_handling = ValidationProcess::builder(answers)
        .strategy(Box::new(WorkerDriven))
        .config(ProcessConfig {
            budget: Some(36),
            handle_faulty_workers: false,
            ..ProcessConfig::default()
        })
        .ground_truth(truth.clone())
        .build();
    let mut expert2 = SimulatedExpert::perfect(truth, 2);
    let mut provide = |o: ObjectId| expert2.validate(o);
    without_handling
        .run(&mut provide)
        .expect("simulated labels are in range");
    println!(
        "\nresult precision with spammer handling   : {:.3}",
        process.precision().unwrap()
    );
    println!(
        "result precision without spammer handling: {:.3}",
        without_handling.precision().unwrap()
    );
}
