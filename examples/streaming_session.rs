//! Streaming validation session: votes keep arriving while the expert works.
//!
//! The batch examples build a finished answer set and then validate. This
//! example drives the other production shape (§3, §5.4 view maintenance):
//! a [`ValidationSession`] starts from a *partial* snapshot of the vote
//! stream, absorbs arrival batches — new votes, new objects and new workers
//! mid-session — through `ingest`, and interleaves expert validations with
//! the arrivals. Each ingest re-aggregates incrementally (the delta path's
//! dirty set is seeded from the touched objects) and invalidates only the
//! entropy-shortlist entries that actually moved.
//!
//! Run with: `cargo run --example streaming_session`

use crowd_validation::prelude::*;
use crowd_validation::sim::StreamingConfig;

fn main() {
    // A paper-default crowd laid out as an arrival schedule: a quarter of
    // the votes up front, then batches of 80, with 30 % of the objects and
    // 25 % of the workers entering only mid-stream.
    let scenario = StreamingConfig {
        base: SyntheticConfig {
            num_objects: 60,
            ..SyntheticConfig::paper_default(7)
        },
        initial_fraction: 0.25,
        batch_size: 80,
        late_object_fraction: 0.3,
        late_worker_fraction: 0.25,
    }
    .generate();
    let truth = scenario.truth.clone();
    let mut expert = SimulatedExpert::perfect(truth.clone(), scenario.num_labels);

    let mut session = ValidationSessionBuilder::empty(scenario.num_labels)
        .strategy(Box::new(HybridStrategy::new(42)))
        .config(ProcessConfig {
            budget: Some(20),
            ..ProcessConfig::default()
        })
        .ground_truth(truth)
        .build();

    let snapshot = session
        .ingest(&scenario.initial)
        .expect("initial snapshot ingests");
    println!(
        "snapshot: {} votes | {} objects, {} workers | H(P) = {:.2}",
        snapshot.votes_ingested, snapshot.new_objects, snapshot.new_workers, snapshot.uncertainty
    );

    println!("\n      batch |    votes | +objects | +workers |  EM it | dirty H-cache |   H(P)  | precision");
    for (i, batch) in scenario.batches.iter().enumerate() {
        let update = session.ingest(batch).expect("stream batches ingest");
        println!(
            "  arrival {i:>2} | {:>8} | {:>8} | {:>8} | {:>6} | {:>13} | {:>7.2} | {:>9.3}",
            update.votes_ingested,
            update.new_objects,
            update.new_workers,
            update.em_iterations,
            update.invalidated_entries,
            update.uncertainty,
            session.precision().unwrap_or(f64::NAN),
        );

        // The expert validates two objects between arrival batches — the
        // interleaving a live platform actually sees.
        for _ in 0..2 {
            if session.is_finished() {
                break;
            }
            let Some(object) = session.select_next() else {
                break;
            };
            let label = expert.validate(object);
            session
                .integrate(object, label)
                .expect("simulated labels are in range");
            println!(
                "  validate   | {object:>8} | {:>8} | {:>8} | {:>6} | {:>13} | {:>7.2} | {:>9.3}",
                "-",
                "-",
                session.current().em_iterations(),
                "-",
                session.uncertainty(),
                session.precision().unwrap_or(f64::NAN),
            );
        }
    }

    let trace = session.trace();
    println!(
        "\nfinal: {} objects, {} workers, {} votes ingested | {} validations | precision {:.3} (started {:.3})",
        session.answers().num_objects(),
        session.answers().num_workers(),
        session.votes_ingested(),
        trace.len(),
        session.precision().unwrap_or(f64::NAN),
        trace.initial_precision.unwrap_or(f64::NAN),
    );
    assert!(
        session.expert().count() <= 20,
        "budget must cap expert effort"
    );
}
