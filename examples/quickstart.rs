//! Quick start: validate a small crowdsourced labelling task with a limited
//! expert budget and watch precision climb.
//!
//! Run with `cargo run --release --example quickstart`.

use crowd_validation::prelude::*;

fn main() {
    // 1. A crowdsourcing task: 50 objects, 20 workers, 2 labels. The worker
    //    population follows the paper's default mix (43 % reliable, 32 %
    //    sloppy, 25 % spammers) with reliability 0.65 — noisy enough that
    //    plain aggregation cannot reach perfect correctness.
    let synthetic = SyntheticConfig::paper_default(42).generate();
    let answers = synthetic.dataset.answers().clone();
    let truth = synthetic.dataset.ground_truth().clone();
    println!(
        "dataset: {} objects, {} workers, {} labels, {} answers",
        answers.num_objects(),
        answers.num_workers(),
        answers.num_labels(),
        answers.matrix().num_answers()
    );

    // 2. Where would majority voting and unaided EM land?
    let mv_precision = truth.precision(&MajorityVoting::vote(&answers));
    let em = IncrementalEm::default().conclude(&answers, &ExpertValidation::empty(50), None);
    let em_precision = truth.precision(&em.instantiate());
    println!("majority voting precision : {mv_precision:.3}");
    println!("EM aggregation precision  : {em_precision:.3}");

    // 3. Guided validation: i-EM aggregation + hybrid guidance, budget of
    //    20 % of the objects (10 validations).
    let budget = answers.num_objects() / 5;
    let mut process = ValidationProcess::builder(answers)
        .strategy(Box::new(HybridStrategy::new(7)))
        .config(ProcessConfig {
            budget: Some(budget),
            ..ProcessConfig::default()
        })
        .ground_truth(truth.clone())
        .build();

    let mut expert = SimulatedExpert::perfect(truth, 2);
    println!("\n iter  object  strategy             precision  uncertainty");
    while !process.is_finished() {
        let Some(object) = process.select_next() else {
            break;
        };
        let label = expert.validate(object);
        process
            .integrate(object, label)
            .expect("simulated labels are in range");
        let step = process.trace().steps.last().unwrap();
        println!(
            " {:>4}  {:>6}  {:<20} {:>8.3}   {:>10.3}",
            step.iteration,
            step.object.index(),
            format!("{:?}", step.strategy),
            step.precision.unwrap_or(f64::NAN),
            step.uncertainty
        );
    }

    let trace = process.trace();
    println!(
        "\nafter validating {} of {} objects ({:.0} % effort):",
        trace.len(),
        trace.num_objects,
        100.0 * trace.effort()
    );
    println!(
        "  precision            : {:.3}",
        trace.final_precision().unwrap()
    );
    println!(
        "  precision improvement: {:.0} %",
        100.0 * trace.precision_improvement().unwrap()
    );
    println!(
        "  uncertainty          : {:.3} (was {:.3})",
        trace.final_uncertainty(),
        trace.initial_uncertainty
    );
}
