//! Image-tagging scenario: validate the `bb` (bluebird) replica dataset and
//! compare the hybrid guidance strategy against the highest-entropy baseline
//! at several expert-effort levels — a miniature of the paper's Fig. 10.
//!
//! Run with `cargo run --release --example image_tagging`.

use crowd_validation::prelude::*;

/// Runs a full validation pass with the given strategy and returns the trace.
fn run_strategy(
    data: &SyntheticDataset,
    strategy: Box<dyn SelectionStrategy>,
    budget: usize,
) -> ValidationTrace {
    let truth = data.dataset.ground_truth().clone();
    let mut process = ValidationProcess::builder(data.dataset.answers().clone())
        .strategy(strategy)
        .config(ProcessConfig {
            budget: Some(budget),
            goal: ValidationGoal::TargetPrecision(1.0),
            parallel: true,
            ..ProcessConfig::default()
        })
        .ground_truth(truth.clone())
        .build();
    let mut expert = SimulatedExpert::perfect(truth, data.dataset.answers().num_labels());
    let mut provide = |o: ObjectId| expert.validate(o);
    process
        .run(&mut provide)
        .expect("simulated labels are in range");
    process.trace().clone()
}

fn main() {
    // The bluebird replica: 108 images, 39 workers, 2 labels (Table 4).
    let data = replica(ReplicaName::Bluebird);
    let stats = data.dataset.stats();
    println!(
        "dataset {} ({}): {} objects, {} workers, {} labels",
        stats.name, stats.domain, stats.objects, stats.workers, stats.labels
    );

    let budget = stats.objects; // allow running to completion
    let hybrid = run_strategy(&data, Box::new(HybridStrategy::new(11)), budget);
    let baseline = run_strategy(&data, Box::new(EntropyBaseline), budget);

    println!("\n effort |  hybrid precision | baseline precision");
    println!(" -------+-------------------+-------------------");
    for effort_pct in [0, 10, 20, 30, 40, 50, 75, 100] {
        let effort = effort_pct as f64 / 100.0;
        println!(
            "  {:>4}% |        {:>8.3}   |        {:>8.3}",
            effort_pct,
            hybrid.precision_at_effort(effort).unwrap_or(f64::NAN),
            baseline.precision_at_effort(effort).unwrap_or(f64::NAN),
        );
    }

    for target in [0.95, 0.99, 1.0] {
        let h = hybrid.effort_to_reach_precision(target);
        let b = baseline.effort_to_reach_precision(target);
        println!(
            "\n effort to reach precision {:.2}: hybrid {}, baseline {}",
            target,
            h.map_or("not reached".into(), |e| format!("{:.0} %", 100.0 * e)),
            b.map_or("not reached".into(), |e| format!("{:.0} %", 100.0 * e)),
        );
    }
}
