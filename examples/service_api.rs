//! The service front door: drive two concurrent validation tasks through
//! the versioned request/response protocol, checkpoint one mid-flight and
//! restore it — everything a deployment would do over a transport, here
//! in-process.
//!
//! Run with `cargo run --release --example service_api`.

use crowd_validation::prelude::*;
use crowd_validation::service::{
    ClientVote, Request, RequestEnvelope, Response, StrategyChoice, TaskConfig, ValidationService,
};

fn send(service: &mut ValidationService, request: Request) -> Response {
    service
        .handle(&RequestEnvelope::latest(request))
        .expect("example requests are well-formed")
}

fn main() {
    let mut service = ValidationService::new();

    // Two tenants with different label vocabularies and guidance setups.
    for (task, labels, strategy) in [
        (
            "reviews",
            vec!["negative", "positive"],
            StrategyChoice::Hybrid,
        ),
        (
            "listings",
            vec!["valid", "fraud"],
            StrategyChoice::UncertaintyDriven,
        ),
    ] {
        send(
            &mut service,
            Request::CreateTask {
                task: task.into(),
                labels: labels.into_iter().map(String::from).collect(),
                config: TaskConfig {
                    strategy,
                    seed: 42,
                    ..TaskConfig::default()
                },
            },
        );
    }

    // Simulate two crowds and stream their votes in, external ids only.
    for (task, labels, seed) in [
        ("reviews", ["negative", "positive"], 1u64),
        ("listings", ["valid", "fraud"], 2u64),
    ] {
        let synth = SyntheticConfig {
            num_objects: 20,
            num_workers: 12,
            ..SyntheticConfig::paper_default(seed)
        }
        .generate();
        let votes: Vec<ClientVote> = synth
            .dataset
            .answers()
            .matrix()
            .iter()
            .map(|(o, w, l)| ClientVote {
                worker: format!("crowd-{}", w.index()),
                object: format!("{task}-item-{}", o.index()),
                label: labels[l.index()].to_string(),
            })
            .collect();
        let reply = send(
            &mut service,
            Request::SubmitVotes {
                task: task.into(),
                votes,
            },
        );
        if let Response::VotesAccepted {
            votes,
            new_objects,
            uncertainty,
            ..
        } = reply
        {
            println!("[{task}] ingested {votes} votes over {new_objects} objects, H(P) = {uncertainty:.3}");
        }
    }

    // Ask each tenant's strategy where the expert helps most, validate.
    for (task, label) in [("reviews", "positive"), ("listings", "valid")] {
        if let Response::Guidance {
            object: Some(object),
            ..
        } = send(&mut service, Request::RequestGuidance { task: task.into() })
        {
            println!("[{task}] expert should look at {object}");
            send(
                &mut service,
                Request::SubmitValidation {
                    task: task.into(),
                    object,
                    label: label.into(),
                },
            );
        }
    }

    // Crash drill: checkpoint `reviews`, drop it, restore it, resume.
    let Response::Snapshot { snapshot, .. } = send(
        &mut service,
        Request::Snapshot {
            task: "reviews".into(),
        },
    ) else {
        unreachable!("snapshot reply");
    };
    let serialized = serde_json::to_string(&snapshot).expect("snapshot serializes");
    println!("snapshot of `reviews`: {} bytes of JSON", serialized.len());
    send(
        &mut service,
        Request::CloseTask {
            task: "reviews".into(),
        },
    );
    let snapshot = serde_json::from_str(&serialized).expect("snapshot parses");
    send(
        &mut service,
        Request::Restore {
            task: "reviews".into(),
            snapshot,
        },
    );
    if let Response::Posterior {
        object,
        label,
        validated,
        ..
    } = send(
        &mut service,
        Request::QueryPosterior {
            task: "reviews".into(),
            object: "reviews-item-0".into(),
        },
    ) {
        println!("restored `reviews` still answers: {object} -> {label} (validated: {validated})");
    }
    println!("live tasks: {:?}", service.task_names());
}
