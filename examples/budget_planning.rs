//! Budget planning: given a fixed overall budget, how much should be spent on
//! crowd answers and how much on expert validation? A miniature of the
//! paper's §6.8 / Fig. 13–14 analysis.
//!
//! Run with `cargo run --release --example budget_planning`.

use crowd_validation::prelude::*;
use crowdval_sim::augment::thin_to_answers_per_object;

/// Aggregated precision after spending the given allocation: `phi0` crowd
/// answers per object first, then `validations` guided expert validations.
fn precision_for_allocation(source: &SyntheticDataset, phi0: usize, validations: usize) -> f64 {
    let dataset = thin_to_answers_per_object(source, phi0, 17);
    let truth = source.dataset.ground_truth().clone();
    let mut process = ValidationProcess::builder(dataset.answers().clone())
        .strategy(Box::new(HybridStrategy::new(3)))
        .config(ProcessConfig {
            budget: Some(validations),
            parallel: true,
            ..ProcessConfig::default()
        })
        .ground_truth(truth.clone())
        .build();
    let mut expert = SimulatedExpert::perfect(truth, 2);
    let mut provide = |o: ObjectId| expert.validate(o);
    process
        .run(&mut provide)
        .expect("simulated labels are in range");
    process.precision().unwrap()
}

fn main() {
    // A crowd able to provide up to 25 answers per object.
    let source = SyntheticConfig {
        num_objects: 50,
        num_workers: 25,
        reliability: 0.7,
        ..SyntheticConfig::paper_default(999)
    }
    .generate();
    let n = source.dataset.answers().num_objects();

    // Expert answers cost 25x a crowd answer; total budget b = rho * theta * n.
    let cost = CostModel::new(25.0, n);
    let rho = 0.4;
    let budget = cost.budget_for_rho(rho);
    println!(
        "objects: {n}, theta = {}, rho = {rho}, total budget = {budget}",
        cost.theta
    );

    // A completion-time constraint: the expert has time for at most 15
    // validations.
    let max_validations = 15;

    println!("\n crowd share | phi0 (answers/object) | expert validations | in time? | precision");
    println!(" ------------+------------------------+--------------------+----------+----------");
    let mut best: Option<(f64, f64, usize)> = None;
    for allocation in cost.allocations(budget, 10) {
        let phi0 = allocation.phi0.floor() as usize;
        if phi0 == 0 {
            continue;
        }
        let precision = precision_for_allocation(&source, phi0.min(25), allocation.validations);
        let in_time = allocation.satisfies_time_constraint(max_validations);
        println!(
            "  {:>9.0}% | {:>22} | {:>18} | {:>8} | {:>8.3}",
            100.0 * allocation.crowd_share,
            phi0,
            allocation.validations,
            if in_time { "yes" } else { "no" },
            precision
        );
        if in_time && best.is_none_or(|(p, _, _)| precision > p) {
            best = Some((precision, allocation.crowd_share, allocation.validations));
        }
    }

    if let Some((precision, crowd_share, validations)) = best {
        println!(
            "\nbest allocation under the time constraint: spend {:.0} % on the crowd and \
             validate {validations} objects (precision {precision:.3})",
            100.0 * crowd_share
        );
    }
}
