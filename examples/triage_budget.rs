//! Triage in action: the same crowd validated twice — once paying one
//! expert query per object, once with agreement-prediction triage
//! auto-finalizing the objects the crowd will get right on its own.
//! Prints the budget both runs spent, the audit trail of every
//! auto-finalize decision, and the precision each run ended with.
//!
//! Run with `cargo run --release --example triage_budget`.

use crowd_validation::prelude::*;

/// Streams the crowd through one session and validates with a simulated
/// expert until every object is finalized (by a query or, in the triaged
/// run, by the policy). Returns the finished session plus the query count.
fn run(scenario: &StreamingScenario, triage: TriageConfig) -> (ValidationSession, usize) {
    let truth = scenario.truth.clone();
    let mut session = ValidationSessionBuilder::empty(scenario.num_labels)
        .strategy(Box::new(HybridStrategy::new(7)))
        .config(ProcessConfig {
            trust: TrustConfig::streaming_default(),
            triage,
            ..ProcessConfig::default()
        })
        .ground_truth(truth.clone())
        .try_build()
        .expect("scenario is well-formed");
    session.ingest(&scenario.initial).expect("initial ingest");
    for batch in &scenario.batches {
        session.ingest(batch).expect("batch ingest");
    }
    let mut queries = 0;
    while !session.is_finished() {
        let Some(object) = session.select_next() else {
            break;
        };
        session
            .integrate(object, truth.label(object))
            .expect("expert label is in range");
        queries += 1;
    }
    (session, queries)
}

fn main() {
    // The paper-default crowd: 20 workers of mixed reliability (spammers
    // included), every worker voting on every object.
    let scenario = StreamingConfig {
        base: SyntheticConfig {
            num_objects: 72,
            ..SyntheticConfig::paper_default(74_000)
        },
        ..StreamingConfig::paper_default(74_000)
    }
    .generate();

    // Arm 1: no triage — every object costs one expert query.
    let (plain, plain_queries) = run(&scenario, TriageConfig::default());

    // Arm 2: the calibrated triage preset.
    let (triaged, triaged_queries) = run(&scenario, TriageConfig::calibrated());
    let counters = triaged.triage_counters();

    println!("objects: {}", scenario.config.base.num_objects);
    println!(
        "plain:   {} expert queries, precision {:.4}",
        plain_queries,
        plain.precision().unwrap()
    );
    println!(
        "triaged: {} expert queries, precision {:.4}",
        triaged_queries,
        triaged.precision().unwrap()
    );
    println!(
        "policy:  {} scored, {} auto-finalized, {} held contentious, {} escalated",
        counters.scored, counters.auto_finalized, counters.contentious, counters.escalated
    );

    // Every auto-finalize left an audit record with the features the
    // policy saw at decide time — this is what an operator reviews.
    println!("\n audit | object | score  | posterior | votes | margin | trust");
    println!(" ------+--------+--------+-----------+-------+--------+------");
    for (i, rec) in triaged.triage_audit().iter().enumerate() {
        println!(
            " {:>5} | {:>6} | {:.4} | {:>9.4} | {:>5} | {:>6.2} | {:.3}",
            i,
            rec.object.index(),
            rec.score,
            rec.confidence,
            rec.features.votes,
            rec.features.margin,
            rec.features.trust,
        );
    }

    let saved = plain_queries.saturating_sub(triaged_queries);
    println!(
        "\ntriage saved {saved} of {plain_queries} expert queries ({:.0}%)",
        100.0 * saved as f64 / plain_queries.max(1) as f64
    );
}
